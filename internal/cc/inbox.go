package cc

import (
	"errors"

	"youtopia/internal/chase"
	"youtopia/internal/inbox"
)

// This file is the schedulers' half of the decision inbox. In inbox
// mode (Config.Inbox != nil) a transaction that blocks on a frontier
// group is parked exactly once: its open question becomes an inbox
// entry, the transaction leaves the dispatchable set, and NO user poll
// runs on its behalf until an answer is recorded (the Metrics.UserPolls
// counter stays put while it waits — the bounded-polls property the
// legacy busy-repoll mode lacks). Answers recorded on the box — by an
// asynchronous answerer, a curator, or a deadline auto-answer — wake
// the transaction; deadline aborts cancel it.

// parkEntry renders a blocked update's first answerable frontier group
// as an inbox entry and parks it. ok is false when no open group has
// enumerable options (nothing a curator could answer).
func parkEntry(e *chase.Engine, box *inbox.Box, u *chase.Update, pol inbox.Policy) (int64, bool) {
	question, options, kinds, ctx, positive, ok := renderFrontier(e, u)
	if !ok {
		return 0, false
	}
	id := box.Park(inbox.Entry{
		Update:      u.Number,
		Op:          u.Initial,
		Question:    question,
		Options:     options,
		OptionKinds: kinds,
		Context:     ctx,
		Positive:    positive,
		FrontierOps: u.Stats.FrontierOps,
		Policy:      pol,
	})
	return id, true
}

// renderFrontier renders the first answerable frontier group of a
// blocked update as inbox-entry fields.
func renderFrontier(e *chase.Engine, u *chase.Update) (question string, options []string, kinds []chase.DecisionKind, ctx string, positive bool, ok bool) {
	for _, g := range u.Groups() {
		opts := e.Options(u, g)
		if len(opts) == 0 {
			continue
		}
		options = make([]string, len(opts))
		kinds = make([]chase.DecisionKind, len(opts))
		for i, d := range opts {
			options[i] = d.String()
			kinds[i] = d.Kind
		}
		return g.String(), options, kinds, e.DecisionContext(u, g), g.Positive, true
	}
	return "", nil, nil, "", false, false
}

// consumeAnswers applies the first applicable recorded answer past
// *applied to one of u's open groups, advancing *applied over everything
// it inspected. Stale answers (context no longer open, or the option
// enumeration moved on) are skipped — the question will be re-asked.
// It reports whether a frontier operation was applied.
func consumeAnswers(e *chase.Engine, u *chase.Update, answers []inbox.Answer, applied *int) (bool, error) {
	for *applied < len(answers) {
		a := answers[*applied]
		*applied++
		g := groupByContext(e, u, a.Context)
		if g == nil {
			continue
		}
		if err := e.ApplyOption(u, g, a.Option); err != nil {
			if errors.Is(err, chase.ErrStaleDecision) {
				continue
			}
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// groupByContext finds the open frontier group whose canonical decision
// context matches, or nil.
func groupByContext(e *chase.Engine, u *chase.Update, ctx string) *chase.FrontierGroup {
	for _, g := range u.Groups() {
		if len(e.Options(u, g)) == 0 {
			continue
		}
		if e.DecisionContext(u, g) == ctx {
			return g
		}
	}
	return nil
}

// reaskIfStale refreshes a parked entry's question when the update
// re-blocked on a different frontier group than the entry shows (after
// an abort/restart, or after a consumed answer led somewhere new), so
// curators always see an answerable question. Answer history is
// preserved by Requeue.
func reaskIfStale(e *chase.Engine, box *inbox.Box, u *chase.Update, id int64, cur *inbox.Entry) {
	question, options, kinds, ctx, positive, ok := renderFrontier(e, u)
	if !ok {
		return
	}
	if cur.Status != inbox.Answered && cur.Context == ctx {
		return
	}
	_ = box.Requeue(id, question, options, kinds, ctx, positive, u.Stats.FrontierOps)
}

// forgetCommitted drops a Forgetter user's per-update bookkeeping for a
// committed batch.
func forgetCommitted(user chase.User, batch []*Txn) {
	f, ok := user.(chase.Forgetter)
	if !ok {
		return
	}
	for _, t := range batch {
		f.Forget(t.Number)
	}
}
