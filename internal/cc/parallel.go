package cc

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"youtopia/internal/chase"
	"youtopia/internal/inbox"
	"youtopia/internal/query"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// ParallelScheduler drives a workload of updates to termination on N
// worker goroutines — the goroutine-level realization of the paper's
// logically concurrent scheduler (Algorithms 3 and 4). Workers pull
// runnable transactions and execute chase steps through the two-phase
// engine API, synchronized by a single phase lock:
//
//   - The write half of a step (performing the planned writes) runs
//     under the exclusive phase lock, together with a cheap snapshot
//     of the conflict-check candidates: every higher-numbered
//     uncommitted txn's attempt counter and published read prefix,
//     plus the per-stripe sequence numbers of the written relations.
//   - The expensive part of Algorithm 4's conflict processing — the
//     AffectedBy re-evaluations against those frozen read prefixes —
//     runs under the SHARED phase lock, overlapping other updates'
//     read phases. This is safe because store state never changes
//     during shared phases and the frozen prefixes are immutable.
//   - If the checks mark victims, the exclusive lock is re-acquired to
//     apply them: each verdict is revalidated (victims whose attempt
//     counter moved on restarted after the writes and are dropped),
//     and if the per-stripe sequence numbers of the written relations
//     advanced in the interim — other writers landed in the same
//     stripes between the phases — the direct check is redone under
//     the exclusive lock, restoring the original atomic semantics for
//     exactly the overlapping-relation case. Writes to relation sets
//     disjoint from all interim writers keep their shared-phase
//     verdicts. The cascade closure and the rollbacks always run under
//     the exclusive lock, where dependency sets are stable.
//   - The read half (violation discovery, queue recheck, repair
//     planning) and frontier-operation polling run under the shared
//     phase lock, so the read-dominated bulk of chase work proceeds in
//     parallel across updates.
//
// This preserves the closure of the classical OCC validation race: a
// read query is published (under the update's read lock) during a
// shared phase, so at candidate-snapshot time it either is in the
// frozen prefix (and is checked), or was performed after the writes
// landed — in which case its answer already reflects the writes and no
// retroactive conflict exists; the tracker records the dependency
// instead. Each read phase observes the store exactly as if it ran
// between two steps of the serial interleaving, which is the paper's
// execution model; Theorem 4.4's serializability argument therefore
// carries over unchanged, and the committed final instance is
// equivalent to the serial execution of the same workload.
//
// Updates commit strictly in priority order once terminated, exactly
// as in the cooperative scheduler, but the commit frontier is a group
// commit: one exclusive-lock acquisition drains the whole terminated
// prefix through a single storage.CommitBatch. Aborts decided during
// conflict processing are executed under the exclusive lock; a worker
// that had claimed the aborted transaction notices the bumped attempt
// counter at its next lock acquisition and abandons the stale phase.
type ParallelScheduler struct {
	store  storage.Backend
	engine *chase.Engine
	cfg    Config

	// gmu is the phase lock described above. Lock order: gmu before mu.
	gmu sync.RWMutex

	// userMu serializes frontier-decision calls: chase.User
	// implementations (the simulated users included) are not required
	// to be goroutine-safe.
	userMu sync.Mutex

	// mu guards the dispatch state and metrics below.
	mu             sync.Mutex
	cond           *sync.Cond
	txns           []*Txn
	status         []txnStatus
	claimed        []bool
	ready          readyQueue // candidate txn indexes awaiting dispatch
	inflight       int
	commitInFlight bool
	committedUpTo  int // txns[:committedUpTo] have committed
	idle           int // consecutive finished work items without progress
	idleLimit      int
	err            error
	done           bool
	m              Metrics

	// Inbox-mode state (cfg.Inbox != nil), guarded by mu. A parked txn
	// (statusParked) is out of the dispatchable set entirely — no worker
	// polls it — until the box's answer hook or the policy ticker moves
	// it back to statusAwaiting.
	parkID     []int64       // txn index -> inbox entry ID (0 = not parked)
	applied    []int         // txn index -> recorded answers consumed
	autoAnswer []bool        // deadline auto-answer due (policy ticker)
	cancelReq  []bool        // deadline abort due (policy ticker)
	byPark     map[int64]int // inbox entry ID -> txn index
	parked     int           // txns currently in statusParked
	parkedIdle int           // consecutive policy ticks with only parked work
	tickStop   chan struct{}

	// acks settles the pipelined commit acknowledgments before Run
	// returns; see ackTracker.
	acks ackTracker
}

// readyQueue is the dispatcher's min-heap of candidate transaction
// indexes, replacing the old all-txn scan under mu: a pop costs
// O(log n) instead of O(n) per work item. Entries are hints, not
// truth — the dispatcher re-checks status and claim on pop and drops
// stale ones — so pushing duplicates is harmless and every transition
// into a dispatchable state simply pushes. Lowest index first
// preserves the scan's priority order: finishing low-numbered updates
// unblocks the commit frontier and shrinks everyone else's abort
// window.
type readyQueue []int

func (q *readyQueue) push(i int) {
	*q = append(*q, i)
	h := *q
	for c := len(h) - 1; c > 0; {
		p := (c - 1) / 2
		if h[p] <= h[c] {
			break
		}
		h[p], h[c] = h[c], h[p]
		c = p
	}
}

func (q *readyQueue) pop() (int, bool) {
	h := *q
	if len(h) == 0 {
		return 0, false
	}
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for p := 0; ; {
		c := 2*p + 1
		if c >= len(h) {
			break
		}
		if c+1 < len(h) && h[c+1] < h[c] {
			c++
		}
		if h[p] <= h[c] {
			break
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
	*q = h
	return top, true
}

// txnStatus mirrors an update's lifecycle state for the dispatcher,
// which must not touch chase.Update fields (those are synchronized by
// the phase lock, not by mu).
type txnStatus uint8

const (
	statusReady txnStatus = iota
	statusAwaiting
	statusTerminated
	statusCommitted
	// statusParked is inbox mode's blocked state: the txn waits in the
	// decision inbox and is not dispatchable (finish never requeues it);
	// the answer hook or the policy ticker transitions it back to
	// statusAwaiting, which is what bounds polls of blocked txns.
	statusParked
)

func mirrorOf(st chase.State) txnStatus {
	switch st {
	case chase.StateAwaitingUser:
		return statusAwaiting
	case chase.StateTerminated:
		return statusTerminated
	default:
		return statusReady
	}
}

// workKind classifies dispatched work items.
type workKind uint8

const (
	workStep workKind = iota
	workPoll
	workCommit
)

// NewParallelScheduler builds a parallel scheduler over a store and
// mapping set. Config.Workers selects the goroutine count; zero means
// GOMAXPROCS. The Policy field is ignored — goroutine scheduling
// replaces the cooperative interleaving policies.
func NewParallelScheduler(store storage.Backend, set *tgd.Set, cfg Config) *ParallelScheduler {
	if cfg.Tracker == nil {
		cfg.Tracker = Coarse{}
	}
	if cfg.MaxStepsPerUpdate == 0 {
		cfg.MaxStepsPerUpdate = 100000
	}
	if cfg.MaxIdleRounds == 0 {
		cfg.MaxIdleRounds = 10000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &ParallelScheduler{store: store, cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	s.engine = chase.NewEngine(store, set)
	s.engine.MaxStepsPerAttempt = cfg.MaxStepsPerUpdate
	s.engine.SetReadObserver(s.onRead)
	if h, ok := cfg.Tracker.(*Hybrid); ok && h.Attempts == nil {
		h.Attempts = func(number int) int {
			if t := s.txn(number); t != nil {
				return t.Upd.Attempt
			}
			return 1
		}
	}
	return s
}

// Txns returns the scheduler's transactions (after Run started).
func (s *ParallelScheduler) Txns() []*Txn { return s.txns }

// Metrics returns the metrics collected so far.
func (s *ParallelScheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

func (s *ParallelScheduler) txn(number int) *Txn {
	if number < 1 || number > len(s.txns) {
		return nil
	}
	return s.txns[number-1]
}

// onRead forwards each stored read to the tracker, as in the
// cooperative scheduler. It runs in the phase that performed the read
// (shared or exclusive), so the transaction's dependency set is only
// ever written by its current worker and only ever read under the
// exclusive lock.
func (s *ParallelScheduler) onRead(u *chase.Update, q query.ReadQuery) {
	if s.cfg.Mode == ModeFlag {
		return
	}
	if t := s.txn(u.Number); t != nil {
		s.cfg.Tracker.OnRead(s.store, t, q)
	}
}

// bump applies a metrics delta under mu.
func (s *ParallelScheduler) bump(f func(m *Metrics)) {
	s.mu.Lock()
	f(&s.m)
	s.mu.Unlock()
}

// Run executes the workload: ops[i] becomes update number i+1. It
// blocks until every update has committed and returns the collected
// metrics; the error reports stalls (absent users), step-limit or
// abort-limit overruns, or storage failures.
func (s *ParallelScheduler) Run(ops []chase.Op) (Metrics, error) {
	start := time.Now()
	s.txns = make([]*Txn, len(ops))
	s.status = make([]txnStatus, len(ops))
	s.claimed = make([]bool, len(ops))
	s.ready = make(readyQueue, 0, len(ops))
	s.acks.init(s.cfg.Trace)
	for i, op := range ops {
		u := chase.NewUpdate(i+1, op)
		s.txns[i] = &Txn{Upd: u, Number: i + 1, deps: make(map[int]bool)}
		s.ready.push(i)
		s.cfg.Trace.Note(i+1, "submit")
	}
	s.m.Submitted = len(ops)
	n := len(ops)
	if n == 0 {
		n = 1
	}
	s.idleLimit = s.cfg.MaxIdleRounds * n
	s.parkID = make([]int64, len(ops))
	s.applied = make([]int, len(ops))
	s.autoAnswer = make([]bool, len(ops))
	s.cancelReq = make([]bool, len(ops))
	if s.cfg.Inbox != nil {
		s.byPark = make(map[int64]int)
		s.cfg.Inbox.SetOnAnswer(s.onAnswer)
		s.tickStop = make(chan struct{})
		go s.tickLoop()
	}

	syncs0 := s.store.SyncCount()
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop()
		}()
	}
	wg.Wait()
	if s.tickStop != nil {
		close(s.tickStop)
	}
	// Settle the commit pipeline: the workers may have finished with
	// batch syncs still in flight, and nothing is acknowledged — Run
	// included — until they land.
	ackErr := s.acks.wait()

	s.mu.Lock()
	if ackErr != nil && s.err == nil {
		s.err = ackErr
	}
	s.m.CommitAckP50, s.m.CommitAckP99 = s.acks.percentiles()
	s.m.WALSyncs = int(s.store.SyncCount() - syncs0)
	s.m.Runs = s.m.Submitted + s.m.Aborts
	s.m.WallTime = time.Since(start)
	m := s.m
	err := s.err
	s.mu.Unlock()
	return m, err
}

// workerLoop pulls and executes work items until the run completes or
// fails. Each worker owns a conflict-processing scratch, so
// steady-state steps allocate nothing on the coordination path.
func (s *ParallelScheduler) workerLoop() {
	var scratch stepScratch
	for {
		kind, t, ok := s.next()
		if !ok {
			return
		}
		var progressed bool
		var err error
		switch kind {
		case workCommit:
			progressed, err = s.execCommit()
		case workStep:
			progressed, err = s.execStep(t, &scratch)
		case workPoll:
			progressed, err = s.execPoll(t)
		}
		s.finish(kind, t, progressed, err)
	}
}

// next blocks until a work item is available and claims it. It returns
// ok == false when the run is over (all committed, or a fatal error).
func (s *ParallelScheduler) next() (workKind, *Txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.done {
			return 0, nil, false
		}
		if s.committedUpTo == len(s.txns) {
			s.done = true
			s.cond.Broadcast()
			return 0, nil, false
		}
		// Advance the commit frontier as soon as the lowest-priority
		// uncommitted update has terminated (§5: it can no longer abort
		// once every lower-numbered update has committed).
		if !s.commitInFlight && s.status[s.committedUpTo] == statusTerminated {
			s.commitInFlight = true
			s.inflight++
			return workCommit, nil, true
		}
		// Lowest-numbered runnable transaction first: finishing
		// high-priority updates unblocks the commit frontier and shrinks
		// the abort window of everything above them. The ready queue
		// yields candidates in that order; stale entries (claimed, or
		// no longer in a dispatchable state) are dropped on pop.
		for {
			i, ok := s.ready.pop()
			if !ok {
				break
			}
			if s.claimed[i] {
				continue
			}
			switch s.status[i] {
			case statusReady:
				s.claimed[i] = true
				s.inflight++
				return workStep, s.txns[i], true
			case statusAwaiting:
				s.claimed[i] = true
				s.inflight++
				return workPoll, s.txns[i], true
			}
		}
		if s.inflight == 0 && s.parked == 0 {
			// Unreachable by construction (ready/awaiting txns are always
			// dispatchable and terminated ones feed the commit frontier);
			// fail rather than hang if an invariant breaks. Parked txns
			// are the legitimate exception: they wait on inbox answers
			// (the answer hook or the policy ticker wakes us), with the
			// ticker's own idle counter bounding a silent inbox.
			s.err = fmt.Errorf("cc: parallel dispatch stalled with no work in flight")
			s.cond.Broadcast()
			return 0, nil, false
		}
		s.cond.Wait()
	}
}

// finish returns a work item's claim and accounts for progress. A
// transaction that is still dispatchable goes back on the ready queue
// (the claim was what kept it out).
func (s *ParallelScheduler) finish(kind workKind, t *Txn, progressed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if kind == workCommit {
		s.commitInFlight = false
	} else {
		i := t.Number - 1
		s.claimed[i] = false
		if st := s.status[i]; st == statusReady || st == statusAwaiting {
			s.ready.push(i)
		}
	}
	if err != nil && s.err == nil {
		s.err = err
	}
	if progressed {
		s.idle = 0
		s.parkedIdle = 0
	} else {
		s.idle++
		if s.err == nil && s.idle >= s.idleLimit {
			s.err = fmt.Errorf("cc: no progress after %d idle dispatches (users absent?)", s.idle)
		}
	}
	s.cond.Broadcast()
}

// execStep runs one chase step for a claimed transaction: the write
// half under the exclusive phase lock (plus an allocation-free
// candidate snapshot off the published read-prefix records), the
// direct conflict checks under the shared lock, abort application
// back under the exclusive lock, and finally the read half under the
// shared lock. If the transaction was aborted between any of the
// phases (by a lower-priority writer's conflict wave), the remaining
// phases are abandoned — the storage rollback already happened and
// the dispatcher will rerun the fresh attempt.
func (s *ParallelScheduler) execStep(t *Txn, scratch *stepScratch) (bool, error) {
	var stepStart time.Time
	if s.cfg.Trace.Enabled() {
		stepStart = time.Now()
	}
	s.gmu.Lock()
	if st := t.Upd.State(); st != chase.StateReady {
		s.mu.Lock()
		s.setStatusLocked(t.Number-1, mirrorOf(st))
		s.mu.Unlock()
		s.gmu.Unlock()
		return false, nil
	}
	attempt := t.Upd.Attempt
	res, err := s.engine.StepWrites(t.Upd)
	var cands []conflictCandidate
	var relSeqs []relSeq
	if err != nil {
		err = fmt.Errorf("cc: update %d: %w", t.Number, err)
	} else if len(res.Writes) > 0 {
		// Freeze the victims-to-check and the written stripes' sequence
		// numbers while still exclusive; the expensive AffectedBy
		// evaluations then run under the shared lock. Both collections
		// reuse the worker's scratch — zero allocations in steady state.
		cands = snapshotCandidatesInto(scratch.cands[:0], s.txns, t.Number)
		scratch.cands = cands
		relSeqs = writtenRelSeqsInto(scratch.rels[:0], s.store, res.Writes)
		scratch.rels = relSeqs
	}
	s.gmu.Unlock()
	if err != nil {
		return true, err
	}
	s.bump(func(m *Metrics) { m.Steps++; m.Writes += len(res.Writes) })
	obsSteps.Inc()
	obsWrites.Add(int64(len(res.Writes)))
	s.cfg.Trace.Span(t.Number, "step", stepStart)

	if len(cands) > 0 {
		if err := s.processWritesDeferred(t, attempt, res.Writes, cands, relSeqs, scratch); err != nil {
			return true, err
		}
	}

	s.gmu.RLock()
	if t.Upd.Attempt == attempt {
		if _, rerr := s.engine.StepReads(t.Upd, res.Writes); rerr != nil {
			s.gmu.RUnlock()
			return true, fmt.Errorf("cc: update %d: %w", t.Number, rerr)
		}
		st := t.Upd.State()
		s.mu.Lock()
		s.setStatusLocked(t.Number-1, mirrorOf(st))
		s.mu.Unlock()
	}
	s.gmu.RUnlock()
	return true, nil
}

// processWritesDeferred is the out-of-lock half of Algorithm 4's
// conflict processing: the direct AffectedBy checks run under the
// shared phase lock against the frozen candidates, and only if victims
// were marked (never in ModeFlag) is the exclusive lock taken to
// revalidate and execute the abort wave.
func (s *ParallelScheduler) processWritesDeferred(t *Txn, attempt int, writes []storage.WriteRec, cands []conflictCandidate, relSeqs []relSeq, scratch *stepScratch) error {
	var delta Metrics
	var marked []conflictCandidate
	s.gmu.RLock()
	if t.Upd.Attempt == attempt {
		// Our writes are still in place (a rolled-back batch cannot
		// retroactively change anyone's answers).
		marked = directConflicts(s.store, &s.cfg, cands, writes, &delta)
	}
	s.gmu.RUnlock()
	if len(marked) == 0 {
		// Nothing to apply; ModeFlag and clean checks end here.
		s.bumpConflictMetrics(delta)
		return nil
	}

	s.gmu.Lock()
	defer s.gmu.Unlock()
	if t.Upd.Attempt != attempt {
		// The writer itself was aborted in the interim: its writes are
		// gone, and the conflicts died with them.
		return nil
	}
	// Per-stripe sequence validation: if other writers landed in the
	// written relations between the phases, redo the direct check here
	// under the exclusive lock — the conservative original semantics.
	// Disjoint-relation interim writers leave the seqs untouched and
	// the shared-phase verdicts stand.
	stale := false
	for _, rs := range relSeqs {
		if s.store.RelSeq(rs.rel) != rs.seq {
			stale = true
			break
		}
	}
	if stale {
		delta = Metrics{}
		scratch.redo = snapshotCandidatesInto(scratch.redo[:0], s.txns, t.Number)
		marked = directConflicts(s.store, &s.cfg, scratch.redo, writes, &delta)
	}
	// Revalidate: a victim whose attempt counter moved on (or that
	// committed) restarted after our writes, so its fresh reads already
	// reflect them and the verdict no longer applies. The prefix
	// record's attempt is compared against the live counter the same
	// way the per-stripe seqs were compared above — an unchanged value
	// proves the frozen reads are still the victim's reads.
	victims := make([]*Txn, 0, len(marked))
	for _, c := range marked {
		if c.t.Upd.Attempt == c.prefix.Attempt && !c.t.committed {
			victims = append(victims, c.t)
		}
	}
	err := executeAbortWave(s.store, &s.cfg, s.txns, victims, &delta, s.abortLocked)
	s.bumpConflictMetrics(delta)
	return err
}

// bumpConflictMetrics merges a conflict-processing metrics delta.
func (s *ParallelScheduler) bumpConflictMetrics(delta Metrics) {
	if delta == (Metrics{}) {
		return
	}
	s.bump(func(m *Metrics) {
		m.DirectAbortRequests += delta.DirectAbortRequests
		m.CascadingAbortRequests += delta.CascadingAbortRequests
		m.RemovalAbortRequests += delta.RemovalAbortRequests
		m.Flagged += delta.Flagged
	})
}

// setStatusLocked updates a txn's dispatch mirror, maintaining the
// parked count and resolving the txn's inbox entry when it reaches a
// terminal state. Callers hold mu.
func (s *ParallelScheduler) setStatusLocked(i int, st txnStatus) {
	old := s.status[i]
	if old == statusParked && st != statusParked {
		s.parked--
	} else if st == statusParked && old != statusParked {
		s.parked++
	}
	s.status[i] = st
	if s.cfg.Inbox != nil && (st == statusTerminated || st == statusCommitted) {
		if pid := s.parkID[i]; pid != 0 {
			s.cfg.Inbox.Resolve(pid)
			delete(s.byPark, pid)
			s.parkID[i] = 0
		}
	}
}

// dropEntryLocked aborts a txn's inbox entry (the txn restarted or was
// cancelled; its question is void). Callers hold mu.
func (s *ParallelScheduler) dropEntryLocked(i int) {
	if s.cfg.Inbox == nil {
		return
	}
	if pid := s.parkID[i]; pid != 0 {
		s.cfg.Inbox.Abort(pid)
		delete(s.byPark, pid)
		s.parkID[i] = 0
		s.applied[i] = 0
	}
}

// onAnswer is the inbox's answer hook: an answer was recorded for a
// parked txn, so move it back into the dispatchable set and wake a
// worker to consume it. Runs outside the box lock.
func (s *ParallelScheduler) onAnswer(id int64) {
	s.mu.Lock()
	if i, ok := s.byPark[id]; ok && s.status[i] == statusParked {
		s.setStatusLocked(i, statusAwaiting)
		if !s.claimed[i] {
			s.ready.push(i)
		}
		s.parkedIdle = 0
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// tickLoop drives the inbox's policy clock while the run lasts: every
// millisecond of wall time is one inbox tick, and due deadline actions
// (auto-answers, aborts) are marked on their txns and dispatched. It
// also bounds a silent inbox: if only parked work exists for
// MaxIdleRounds consecutive ticks, the run fails like the legacy
// absent-users stall instead of hanging.
func (s *ParallelScheduler) tickLoop() {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-tick.C:
		}
		for _, d := range s.cfg.Inbox.Tick(1) {
			if d.Kind == inbox.DueEscalate {
				continue // priority bump already applied by the box
			}
			s.mu.Lock()
			if i, ok := s.byPark[d.ID]; ok && s.status[i] == statusParked {
				switch d.Kind {
				case inbox.DueAutoAnswer:
					s.autoAnswer[i] = true
				case inbox.DueAbort:
					s.cancelReq[i] = true
				}
				s.setStatusLocked(i, statusAwaiting)
				if !s.claimed[i] {
					s.ready.push(i)
				}
				s.parkedIdle = 0
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
		s.mu.Lock()
		if s.parked > 0 && s.inflight == 0 && s.err == nil && !s.done {
			s.parkedIdle++
			if s.parkedIdle >= s.cfg.MaxIdleRounds {
				s.err = fmt.Errorf("cc: no inbox answers after %d idle ticks (curators absent and no deadline policy?)", s.parkedIdle)
				s.cond.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}

// execPoll offers one frontier decision opportunity to a blocked
// transaction, under the shared phase lock (frontier operations only
// plan writes; the planned writes are performed by the next step). In
// inbox mode the opportunity consumes recorded answers instead of
// polling the user live.
func (s *ParallelScheduler) execPoll(t *Txn) (bool, error) {
	if s.cfg.Inbox != nil {
		return s.execInboxPoll(t)
	}
	if s.cfg.User == nil {
		return false, nil
	}
	s.gmu.RLock()
	defer s.gmu.RUnlock()
	if st := t.Upd.State(); st != chase.StateAwaitingUser {
		// Stale dispatch; resync the mirror so the dispatcher stops
		// offering poll opportunities to a transaction that moved on.
		s.mu.Lock()
		s.setStatusLocked(t.Number-1, mirrorOf(st))
		s.mu.Unlock()
		return false, nil
	}
	ok, err := pollFrontier(s.engine, t.Upd,
		func(g *chase.FrontierGroup, opts []chase.Decision, ctx string) (chase.Decision, bool) {
			s.userMu.Lock()
			defer s.userMu.Unlock()
			s.bump(func(m *Metrics) { m.UserPolls++ })
			obsUserPolls.Inc()
			return s.cfg.User.Decide(t.Upd, g, opts, ctx)
		})
	if ok {
		s.mu.Lock()
		s.m.FrontierOps++
		s.setStatusLocked(t.Number-1, statusReady)
		s.mu.Unlock()
	}
	return ok, err
}

// execInboxPoll is a blocked transaction's scheduling opportunity in
// inbox mode: park on first block, consume recorded answers when woken,
// execute deadline actions the ticker marked. Between answers the txn
// sits in statusParked and costs zero polls.
func (s *ParallelScheduler) execInboxPoll(t *Txn) (bool, error) {
	i := t.Number - 1
	s.mu.Lock()
	doCancel, doAuto := s.cancelReq[i], s.autoAnswer[i]
	s.cancelReq[i], s.autoAnswer[i] = false, false
	pid := s.parkID[i]
	s.mu.Unlock()

	if doCancel {
		return true, s.cancelTxn(t)
	}

	s.gmu.RLock()
	defer s.gmu.RUnlock()
	if st := t.Upd.State(); st != chase.StateAwaitingUser {
		s.mu.Lock()
		s.setStatusLocked(i, mirrorOf(st))
		s.mu.Unlock()
		return false, nil
	}

	if doAuto && s.cfg.User != nil {
		// Deadline auto-answer: one live consultation of the configured
		// (fallback) user, the graceful-degradation path.
		ok, err := pollFrontier(s.engine, t.Upd,
			func(g *chase.FrontierGroup, opts []chase.Decision, ctx string) (chase.Decision, bool) {
				s.userMu.Lock()
				defer s.userMu.Unlock()
				s.bump(func(m *Metrics) { m.UserPolls++ })
				obsUserPolls.Inc()
				return s.cfg.User.Decide(t.Upd, g, opts, ctx)
			})
		if err != nil {
			return false, err
		}
		if ok {
			s.mu.Lock()
			s.m.FrontierOps++
			s.setStatusLocked(i, statusReady)
			s.mu.Unlock()
			return true, nil
		}
		// The fallback had no answer either; fall through to re-park.
	}

	if pid == 0 {
		id, ok := parkEntry(s.engine, s.cfg.Inbox, t.Upd, s.cfg.InboxPolicy)
		if !ok {
			return false, nil
		}
		obsParked.Inc()
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.NoteDetail(t.Number, "park", fmt.Sprintf("entry=%d", id))
		}
		s.mu.Lock()
		s.parkID[i] = id
		s.applied[i] = 0
		s.byPark[id] = i
		// An answer may have landed between Park and this registration
		// (the hook found no byPark entry and could not wake us); only
		// park if none did.
		if e, ok := s.cfg.Inbox.Get(id); ok && len(e.Answers) == 0 {
			if s.status[i] == statusAwaiting {
				s.setStatusLocked(i, statusParked)
			}
		}
		s.mu.Unlock()
		return true, nil
	}

	e, ok := s.cfg.Inbox.Get(pid)
	if !ok {
		// The entry was aborted out from under the txn; cancel it.
		return true, s.cancelTxn(t)
	}
	s.mu.Lock()
	ap := s.applied[i]
	s.mu.Unlock()
	applied, err := consumeAnswers(s.engine, t.Upd, e.Answers, &ap)
	s.mu.Lock()
	s.applied[i] = ap
	s.mu.Unlock()
	if err != nil {
		return false, fmt.Errorf("cc: update %d inbox answer: %w", t.Number, err)
	}
	if applied {
		obsResumed.Inc()
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.NoteDetail(t.Number, "answer", fmt.Sprintf("entry=%d", pid))
			s.cfg.Trace.Note(t.Number, "resume")
		}
		s.mu.Lock()
		s.m.FrontierOps++
		s.setStatusLocked(i, statusReady)
		s.mu.Unlock()
		return true, nil
	}
	// No applicable answer. Refresh the question if it went stale, then
	// park again — unless yet another answer landed while we polled, in
	// which case stay dispatchable to consume it.
	reaskIfStale(s.engine, s.cfg.Inbox, t.Upd, pid, &e)
	s.mu.Lock()
	if cur, ok := s.cfg.Inbox.Get(pid); ok && s.applied[i] >= len(cur.Answers) &&
		s.status[i] == statusAwaiting && !s.cancelReq[i] && !s.autoAnswer[i] {
		s.setStatusLocked(i, statusParked)
	}
	s.mu.Unlock()
	return false, nil
}

// cancelTxn aborts a parked update for good: its writes roll back, the
// update becomes an empty terminated commit (preserving commit order),
// and its inbox entry is dropped.
func (s *ParallelScheduler) cancelTxn(t *Txn) error {
	s.gmu.Lock()
	if !t.committed && t.Upd.State() != chase.StateTerminated {
		s.store.Abort(t.Number)
		t.Upd.Cancel()
	}
	s.gmu.Unlock()
	s.mu.Lock()
	i := t.Number - 1
	s.dropEntryLocked(i)
	s.setStatusLocked(i, statusTerminated)
	s.m.Cancelled++
	obsCancelled.Inc()
	s.cfg.Trace.Note(t.Number, "cancel")
	s.mu.Unlock()
	return nil
}

// execCommit advances the commit frontier under one exclusive
// phase-lock acquisition: the whole terminated prefix is drained in
// priority order through a single storage group commit, so N
// back-to-back terminations cost one store-wide lock round instead of
// N — and, on a durable store, one log append for the whole batch.
// The append's fsync is pipelined: CommitBatchAsync returns once the
// batch is in the log, the stripe and phase locks are released while
// the disk works, and the ack tracker waits for the covering sync off
// the critical path — which is what lets the frontier drain again
// (and the log coalesce the syncs) while an earlier batch is still
// syncing. The first non-terminated update stops the sweep.
func (s *ParallelScheduler) execCommit() (bool, error) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	var batch []*Txn
	for _, t := range s.txns {
		if t.committed {
			continue
		}
		if t.Upd.State() != chase.StateTerminated {
			break
		}
		batch = append(batch, t)
	}
	if len(batch) == 0 {
		return false, nil
	}
	numbers := make([]int, len(batch))
	for i, t := range batch {
		numbers[i] = t.Number
	}
	ackStart := time.Now()
	ack, err := s.store.CommitBatchAsync(numbers)
	if err != nil {
		return false, fmt.Errorf("cc: commit of updates %d..%d: %w",
			numbers[0], numbers[len(numbers)-1], err)
	}
	if s.cfg.Trace.Enabled() {
		for _, n := range numbers {
			s.cfg.Trace.NoteDetail(n, "commit", fmt.Sprintf("batch_size=%d", len(numbers)))
		}
	}
	s.acks.track(ackStart, ack, numbers)
	fr := 0
	for _, t := range batch {
		t.committed = true
		fr += t.Upd.Stats.FrontierRequests
		// Released stored queries can no longer cause conflicts.
		t.Upd.ReleaseReads()
	}
	forgetCommitted(s.cfg.User, batch)
	obsCommitBatches.Inc()
	obsUpdatesCommitted.Add(int64(len(batch)))
	obsCommitBatchSize.Observe(int64(len(batch)))
	s.mu.Lock()
	s.m.FrontierRequests += fr
	s.m.CommitBatches++
	if len(batch) > s.m.MaxCommitBatch {
		s.m.MaxCommitBatch = len(batch)
	}
	for _, t := range batch {
		s.setStatusLocked(t.Number-1, statusCommitted)
	}
	s.committedUpTo += len(batch)
	s.mu.Unlock()
	return true, nil
}

// abortLocked rolls an update back via the shared rollbackTxn and
// resyncs the dispatch mirror. Callers hold the exclusive phase lock;
// bumping the attempt counter under it is what tells a concurrent
// claimant to abandon its stale phase.
func (s *ParallelScheduler) abortLocked(t *Txn) error {
	var delta Metrics
	err := rollbackTxn(s.store, &s.cfg, t, &delta)
	s.mu.Lock()
	s.m.Aborts += delta.Aborts
	s.m.FrontierRequests += delta.FrontierRequests
	if err == nil {
		i := t.Number - 1
		// A parked victim's question is void — its attempt restarts from
		// scratch — so the inbox entry goes with the rollback.
		s.dropEntryLocked(i)
		s.setStatusLocked(i, statusReady)
		if !s.claimed[i] {
			// The victim may belong to no worker right now; requeue it
			// ourselves (a claimant's finish re-queues otherwise).
			s.ready.push(i)
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return err
}
