package cc

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"youtopia/internal/chase"
	"youtopia/internal/query"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// ParallelScheduler drives a workload of updates to termination on N
// worker goroutines — the goroutine-level realization of the paper's
// logically concurrent scheduler (Algorithms 3 and 4). Workers pull
// runnable transactions and execute chase steps through the two-phase
// engine API, synchronized by a single phase lock:
//
//   - The write half of a step (performing the planned writes) and the
//     conflict processing of Algorithm 4 run under the exclusive phase
//     lock, making every write-then-validate sequence atomic.
//   - The read half (violation discovery, queue recheck, repair
//     planning) and frontier-operation polling run under the shared
//     phase lock, so the read-dominated bulk of chase work proceeds in
//     parallel across updates.
//
// This closes the classical OCC validation race: a read query is
// recorded during a shared-lock phase, so it is either fully published
// before a later exclusive conflict check (which then inspects it), or
// performed after the conflicting write landed (in which case the
// answer already reflects the write and no conflict exists). Store
// state never changes during shared phases — all mutations happen
// under the exclusive lock — so each read phase observes the store
// exactly as if it ran between two steps of the serial interleaving,
// which is the paper's execution model; Theorem 4.4's serializability
// argument therefore carries over unchanged, and the committed final
// instance is equivalent to the serial execution of the same workload.
//
// Updates commit strictly in priority order once terminated, exactly
// as in the cooperative scheduler. Aborts decided during conflict
// processing are executed immediately under the exclusive lock; a
// worker that had claimed the aborted transaction notices the bumped
// attempt counter at its next lock acquisition and abandons the stale
// phase.
type ParallelScheduler struct {
	store  *storage.Store
	engine *chase.Engine
	cfg    Config

	// gmu is the phase lock described above. Lock order: gmu before mu.
	gmu sync.RWMutex

	// userMu serializes frontier-decision calls: chase.User
	// implementations (the simulated users included) are not required
	// to be goroutine-safe.
	userMu sync.Mutex

	// mu guards the dispatch state and metrics below.
	mu             sync.Mutex
	cond           *sync.Cond
	txns           []*Txn
	status         []txnStatus
	claimed        []bool
	inflight       int
	commitInFlight bool
	committedUpTo  int // txns[:committedUpTo] have committed
	idle           int // consecutive finished work items without progress
	idleLimit      int
	err            error
	done           bool
	m              Metrics
}

// txnStatus mirrors an update's lifecycle state for the dispatcher,
// which must not touch chase.Update fields (those are synchronized by
// the phase lock, not by mu).
type txnStatus uint8

const (
	statusReady txnStatus = iota
	statusAwaiting
	statusTerminated
	statusCommitted
)

func mirrorOf(st chase.State) txnStatus {
	switch st {
	case chase.StateAwaitingUser:
		return statusAwaiting
	case chase.StateTerminated:
		return statusTerminated
	default:
		return statusReady
	}
}

// workKind classifies dispatched work items.
type workKind uint8

const (
	workStep workKind = iota
	workPoll
	workCommit
)

// NewParallelScheduler builds a parallel scheduler over a store and
// mapping set. Config.Workers selects the goroutine count; zero means
// GOMAXPROCS. The Policy field is ignored — goroutine scheduling
// replaces the cooperative interleaving policies.
func NewParallelScheduler(store *storage.Store, set *tgd.Set, cfg Config) *ParallelScheduler {
	if cfg.Tracker == nil {
		cfg.Tracker = Coarse{}
	}
	if cfg.MaxStepsPerUpdate == 0 {
		cfg.MaxStepsPerUpdate = 100000
	}
	if cfg.MaxIdleRounds == 0 {
		cfg.MaxIdleRounds = 10000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &ParallelScheduler{store: store, cfg: cfg}
	s.cond = sync.NewCond(&s.mu)
	s.engine = chase.NewEngine(store, set)
	s.engine.MaxStepsPerAttempt = cfg.MaxStepsPerUpdate
	s.engine.SetReadObserver(s.onRead)
	if h, ok := cfg.Tracker.(*Hybrid); ok && h.Attempts == nil {
		h.Attempts = func(number int) int {
			if t := s.txn(number); t != nil {
				return t.Upd.Attempt
			}
			return 1
		}
	}
	return s
}

// Txns returns the scheduler's transactions (after Run started).
func (s *ParallelScheduler) Txns() []*Txn { return s.txns }

// Metrics returns the metrics collected so far.
func (s *ParallelScheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

func (s *ParallelScheduler) txn(number int) *Txn {
	if number < 1 || number > len(s.txns) {
		return nil
	}
	return s.txns[number-1]
}

// onRead forwards each stored read to the tracker, as in the
// cooperative scheduler. It runs in the phase that performed the read
// (shared or exclusive), so the transaction's dependency set is only
// ever written by its current worker and only ever read under the
// exclusive lock.
func (s *ParallelScheduler) onRead(u *chase.Update, q query.ReadQuery) {
	if s.cfg.Mode == ModeFlag {
		return
	}
	if t := s.txn(u.Number); t != nil {
		s.cfg.Tracker.OnRead(s.store, t, q)
	}
}

// bump applies a metrics delta under mu.
func (s *ParallelScheduler) bump(f func(m *Metrics)) {
	s.mu.Lock()
	f(&s.m)
	s.mu.Unlock()
}

// Run executes the workload: ops[i] becomes update number i+1. It
// blocks until every update has committed and returns the collected
// metrics; the error reports stalls (absent users), step-limit or
// abort-limit overruns, or storage failures.
func (s *ParallelScheduler) Run(ops []chase.Op) (Metrics, error) {
	start := time.Now()
	s.txns = make([]*Txn, len(ops))
	s.status = make([]txnStatus, len(ops))
	s.claimed = make([]bool, len(ops))
	for i, op := range ops {
		u := chase.NewUpdate(i+1, op)
		s.txns[i] = &Txn{Upd: u, Number: i + 1, deps: make(map[int]bool)}
	}
	s.m.Submitted = len(ops)
	n := len(ops)
	if n == 0 {
		n = 1
	}
	s.idleLimit = s.cfg.MaxIdleRounds * n

	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop()
		}()
	}
	wg.Wait()

	s.mu.Lock()
	s.m.Runs = s.m.Submitted + s.m.Aborts
	s.m.WallTime = time.Since(start)
	m := s.m
	err := s.err
	s.mu.Unlock()
	return m, err
}

// workerLoop pulls and executes work items until the run completes or
// fails.
func (s *ParallelScheduler) workerLoop() {
	for {
		kind, t, ok := s.next()
		if !ok {
			return
		}
		var progressed bool
		var err error
		switch kind {
		case workCommit:
			progressed = s.execCommit()
		case workStep:
			progressed, err = s.execStep(t)
		case workPoll:
			progressed, err = s.execPoll(t)
		}
		s.finish(kind, t, progressed, err)
	}
}

// next blocks until a work item is available and claims it. It returns
// ok == false when the run is over (all committed, or a fatal error).
func (s *ParallelScheduler) next() (workKind, *Txn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.done {
			return 0, nil, false
		}
		if s.committedUpTo == len(s.txns) {
			s.done = true
			s.cond.Broadcast()
			return 0, nil, false
		}
		// Advance the commit frontier as soon as the lowest-priority
		// uncommitted update has terminated (§5: it can no longer abort
		// once every lower-numbered update has committed).
		if !s.commitInFlight && s.status[s.committedUpTo] == statusTerminated {
			s.commitInFlight = true
			s.inflight++
			return workCommit, nil, true
		}
		// Lowest-numbered runnable transaction first: finishing
		// high-priority updates unblocks the commit frontier and shrinks
		// the abort window of everything above them.
		for i, t := range s.txns {
			if s.claimed[i] {
				continue
			}
			switch s.status[i] {
			case statusReady:
				s.claimed[i] = true
				s.inflight++
				return workStep, t, true
			case statusAwaiting:
				s.claimed[i] = true
				s.inflight++
				return workPoll, t, true
			}
		}
		if s.inflight == 0 {
			// Unreachable by construction (ready/awaiting txns are always
			// dispatchable and terminated ones feed the commit frontier);
			// fail rather than hang if an invariant breaks.
			s.err = fmt.Errorf("cc: parallel dispatch stalled with no work in flight")
			s.cond.Broadcast()
			return 0, nil, false
		}
		s.cond.Wait()
	}
}

// finish returns a work item's claim and accounts for progress.
func (s *ParallelScheduler) finish(kind workKind, t *Txn, progressed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if kind == workCommit {
		s.commitInFlight = false
	} else {
		s.claimed[t.Number-1] = false
	}
	if err != nil && s.err == nil {
		s.err = err
	}
	if progressed {
		s.idle = 0
	} else {
		s.idle++
		if s.err == nil && s.idle >= s.idleLimit {
			s.err = fmt.Errorf("cc: no progress after %d idle dispatches (users absent?)", s.idle)
		}
	}
	s.cond.Broadcast()
}

// execStep runs one chase step for a claimed transaction: the write
// half plus conflict processing atomically under the exclusive phase
// lock, then the read half under the shared lock. If the transaction
// was aborted between the phases (by a lower-priority writer's
// conflict wave), the read half is abandoned — the storage rollback
// already happened and the dispatcher will rerun the fresh attempt.
func (s *ParallelScheduler) execStep(t *Txn) (bool, error) {
	s.gmu.Lock()
	if st := t.Upd.State(); st != chase.StateReady {
		s.mu.Lock()
		s.status[t.Number-1] = mirrorOf(st)
		s.mu.Unlock()
		s.gmu.Unlock()
		return false, nil
	}
	attempt := t.Upd.Attempt
	res, err := s.engine.StepWrites(t.Upd)
	if err != nil {
		err = fmt.Errorf("cc: update %d: %w", t.Number, err)
	} else {
		// Conflicts only ever abort higher-numbered txns than the
		// writer, so t itself is never caught in the wave it causes.
		err = s.processWritesLocked(res.Writes)
	}
	s.gmu.Unlock()
	if err != nil {
		return true, err
	}
	s.bump(func(m *Metrics) { m.Steps++; m.Writes += len(res.Writes) })

	s.gmu.RLock()
	if t.Upd.Attempt == attempt {
		if _, rerr := s.engine.StepReads(t.Upd, res.Writes); rerr != nil {
			s.gmu.RUnlock()
			return true, fmt.Errorf("cc: update %d: %w", t.Number, rerr)
		}
		st := t.Upd.State()
		s.mu.Lock()
		s.status[t.Number-1] = mirrorOf(st)
		s.mu.Unlock()
	}
	s.gmu.RUnlock()
	return true, nil
}

// execPoll offers one frontier decision opportunity to a blocked
// transaction, under the shared phase lock (frontier operations only
// plan writes; the planned writes are performed by the next step).
func (s *ParallelScheduler) execPoll(t *Txn) (bool, error) {
	if s.cfg.User == nil {
		return false, nil
	}
	s.gmu.RLock()
	defer s.gmu.RUnlock()
	if st := t.Upd.State(); st != chase.StateAwaitingUser {
		// Stale dispatch; resync the mirror so the dispatcher stops
		// offering poll opportunities to a transaction that moved on.
		s.mu.Lock()
		s.status[t.Number-1] = mirrorOf(st)
		s.mu.Unlock()
		return false, nil
	}
	ok, err := pollFrontier(s.engine, t.Upd,
		func(g *chase.FrontierGroup, opts []chase.Decision, ctx string) (chase.Decision, bool) {
			s.userMu.Lock()
			defer s.userMu.Unlock()
			return s.cfg.User.Decide(t.Upd, g, opts, ctx)
		})
	if ok {
		s.mu.Lock()
		s.m.FrontierOps++
		s.status[t.Number-1] = statusReady
		s.mu.Unlock()
	}
	return ok, err
}

// execCommit advances the commit frontier under the exclusive phase
// lock: terminated updates commit in priority order; the first
// non-terminated update stops the sweep.
func (s *ParallelScheduler) execCommit() bool {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	progressed := false
	for _, t := range s.txns {
		if t.committed {
			continue
		}
		if t.Upd.State() != chase.StateTerminated {
			break
		}
		t.committed = true
		s.store.Commit(t.Number)
		fr := t.Upd.Stats.FrontierRequests
		// Released stored queries can no longer cause conflicts.
		t.Upd.Reads = nil
		s.mu.Lock()
		s.m.FrontierRequests += fr
		s.status[t.Number-1] = statusCommitted
		s.committedUpTo++
		s.mu.Unlock()
		progressed = true
	}
	return progressed
}

// processWritesLocked runs the shared Algorithm-4 conflict processing
// (collectConflicts) and executes the consolidated abort set. Callers
// hold the exclusive phase lock, which is what makes reading other
// updates' Reads and deps safe; metrics deltas are merged under mu.
func (s *ParallelScheduler) processWritesLocked(writes []storage.WriteRec) error {
	var delta Metrics
	numbers := collectConflicts(s.store, &s.cfg, s.txns, writes, &delta)
	if delta != (Metrics{}) {
		s.bump(func(m *Metrics) {
			m.DirectAbortRequests += delta.DirectAbortRequests
			m.CascadingAbortRequests += delta.CascadingAbortRequests
			m.Flagged += delta.Flagged
		})
	}
	for _, n := range numbers {
		if err := s.abortLocked(s.txn(n)); err != nil {
			return err
		}
	}
	return nil
}

// abortLocked rolls an update back via the shared rollbackTxn and
// resyncs the dispatch mirror. Callers hold the exclusive phase lock;
// bumping the attempt counter under it is what tells a concurrent
// claimant to abandon its stale phase.
func (s *ParallelScheduler) abortLocked(t *Txn) error {
	var delta Metrics
	err := rollbackTxn(s.store, &s.cfg, t, &delta)
	s.mu.Lock()
	s.m.Aborts += delta.Aborts
	s.m.FrontierRequests += delta.FrontierRequests
	if err == nil {
		s.status[t.Number-1] = statusReady
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	return err
}
