// Package cc implements Youtopia's optimistic concurrency control
// (§4–§5 of the paper): the chase scheduler of Algorithm 3, the
// optimistic conflict-detection template of Algorithm 4 built on tuple
// versioning and stored read queries, and the three cascading-abort
// algorithms of §5.1 — NAIVE, COARSE and PRECISE — plus the per-update
// HYBRID policy sketched in §6.
//
// Updates carry priority numbers (lower number = higher priority,
// §3); the store's multiversioning makes writes of higher-numbered
// updates invisible to lower-numbered readers, and every write is
// checked against the stored read queries of higher-numbered (lower
// priority) updates. A retroactively changed answer aborts the reader;
// read dependencies determine who cascades.
package cc

import (
	"fmt"

	"youtopia/internal/query"
	"youtopia/internal/storage"
)

// Tracker determines read dependencies and cascade sets — the part of
// Algorithm 4 that §5.1 varies across NAIVE, COARSE and PRECISE.
type Tracker interface {
	// Name identifies the tracker in reports ("NAIVE", ...).
	Name() string
	// OnRead is invoked when txn u performs read query q; the tracker
	// records u's dependencies on uncommitted lower-numbered writers.
	OnRead(st storage.Backend, u *Txn, q query.ReadQuery)
	// Cascade returns, among active, the txns that must abort because
	// they (transitively directly) read from the aborted txn. The
	// scheduler computes the transitive closure; Cascade returns one
	// level.
	Cascade(st storage.Backend, aborted *Txn, active []*Txn) []*Txn
}

// Naive is the strawman of §5.1: when update i aborts, every active
// update numbered above i is assumed to have read from it.
type Naive struct{}

// Name implements Tracker.
func (Naive) Name() string { return "NAIVE" }

// OnRead implements Tracker: NAIVE records nothing.
func (Naive) OnRead(storage.Backend, *Txn, query.ReadQuery) {}

// Cascade implements Tracker.
func (Naive) Cascade(_ storage.Backend, aborted *Txn, active []*Txn) []*Txn {
	var out []*Txn
	for _, t := range active {
		if t.Number > aborted.Number && !t.committed {
			out = append(out, t)
		}
	}
	return out
}

// Coarse is the cheaper dependency tracker of §5.1.1: for violation
// queries it does not consult the database — any uncommitted
// lower-numbered update that has written into one of the query's
// relations is conservatively assumed to influence the answer.
// Correction (and content) queries are resolved exactly against the
// in-memory write log, which needs no database access.
type Coarse struct{}

// Name implements Tracker.
func (Coarse) Name() string { return "COARSE" }

// OnRead implements Tracker.
func (Coarse) OnRead(st storage.Backend, u *Txn, q query.ReadQuery) {
	if q.Kind() == query.KindViolation {
		for _, rel := range q.Relations() {
			for _, w := range st.UncommittedWritersOf(rel) {
				u.addDep(w)
			}
		}
		return
	}
	for _, w := range relevantUncommitted(st, q) {
		if w.Writer != u.Number && q.AffectedBy(st, w) {
			u.addDep(w.Writer)
		}
	}
}

// relevantUncommitted returns the uncommitted writes a read query's
// AffectedBy could possibly match: queries that name their relations
// (content, more-specific, violation) can only be affected by writes
// into those relations, so only the matching stripes' log shards are
// scanned; relation-less queries (null occurrence) fall back to the
// full memoized list.
func relevantUncommitted(st storage.Backend, q query.ReadQuery) []storage.WriteRec {
	rels := q.Relations()
	if rels == nil {
		return st.UncommittedWrites()
	}
	if len(rels) == 1 {
		return st.UncommittedWritesOf(rels[0])
	}
	var out []storage.WriteRec
	for _, rel := range rels {
		out = append(out, st.UncommittedWritesOf(rel)...)
	}
	return out
}

// Cascade implements Tracker: txns whose recorded dependencies include
// the aborted update.
func (Coarse) Cascade(_ storage.Backend, aborted *Txn, active []*Txn) []*Txn {
	return depCascade(aborted, active)
}

// Precise is the exact tracker of §5.1.1: for every read query it
// determines precisely which previous writes changed the answer,
// asking (seeded, masked) queries against the database for violation
// queries. It detects only true read dependencies, at higher run-time
// cost.
type Precise struct{}

// Name implements Tracker.
func (Precise) Name() string { return "PRECISE" }

// OnRead implements Tracker.
func (Precise) OnRead(st storage.Backend, u *Txn, q query.ReadQuery) {
	for _, w := range relevantUncommitted(st, q) {
		if w.Writer == u.Number {
			continue
		}
		if u.deps[w.Writer] {
			continue // already dependent; skip the expensive check
		}
		if q.AffectedBy(st, w) {
			u.addDep(w.Writer)
		}
	}
}

// Cascade implements Tracker.
func (Precise) Cascade(_ storage.Backend, aborted *Txn, active []*Txn) []*Txn {
	return depCascade(aborted, active)
}

func depCascade(aborted *Txn, active []*Txn) []*Txn {
	var out []*Txn
	for _, t := range active {
		if !t.committed && t.deps[aborted.Number] {
			out = append(out, t)
		}
	}
	return out
}

// Hybrid applies PRECISE to a chosen subset of updates and COARSE to
// the rest — the per-update mixing policy the paper suggests in §6 for
// updates that must not abort spuriously (for example because they
// already aborted several times). PreciseFor decides per update
// number; a nil predicate behaves like COARSE.
type Hybrid struct {
	// PreciseFor selects the updates whose dependencies are computed
	// precisely.
	PreciseFor func(number int, attempt int) bool
	// Attempts reports the current attempt count per update; the
	// scheduler wires this up so predicates can escalate after aborts.
	Attempts func(number int) int

	coarse  Coarse
	precise Precise
}

// Name implements Tracker.
func (h *Hybrid) Name() string { return "HYBRID" }

// OnRead implements Tracker.
func (h *Hybrid) OnRead(st storage.Backend, u *Txn, q query.ReadQuery) {
	if h.usePrecise(u) {
		h.precise.OnRead(st, u, q)
		return
	}
	h.coarse.OnRead(st, u, q)
}

// Cascade implements Tracker.
func (h *Hybrid) Cascade(st storage.Backend, aborted *Txn, active []*Txn) []*Txn {
	return depCascade(aborted, active)
}

func (h *Hybrid) usePrecise(u *Txn) bool {
	if h.PreciseFor == nil {
		return false
	}
	attempt := 1
	if h.Attempts != nil {
		attempt = h.Attempts(u.Number)
	}
	return h.PreciseFor(u.Number, attempt)
}

// EscalateAfter returns a Hybrid predicate that switches an update to
// PRECISE once it has aborted at least k times (attempt > k).
func EscalateAfter(k int) func(number, attempt int) bool {
	return func(_, attempt int) bool { return attempt > k }
}

// TrackerByName builds a tracker from its experiment name.
func TrackerByName(name string) (Tracker, error) {
	switch name {
	case "NAIVE", "naive":
		return Naive{}, nil
	case "COARSE", "coarse":
		return Coarse{}, nil
	case "PRECISE", "precise":
		return Precise{}, nil
	default:
		return nil, fmt.Errorf("cc: unknown tracker %q (want NAIVE, COARSE or PRECISE)", name)
	}
}
