package cc

import (
	"testing"

	"youtopia/internal/chase"
	"youtopia/internal/model"
	"youtopia/internal/query"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// These tests pin the Algorithm-4 detection split: writes to relation
// sets disjoint from a reader's stored queries never mark it, writes
// to overlapping sets do, and the frozen-candidate machinery skips
// victims whose attempt counter moved on.

func conflictSchema() *model.Schema {
	s := model.NewSchema()
	s.MustAddRelation("R", "a", "b")
	s.MustAddRelation("S", "a")
	s.MustAddRelation("T", "a")
	return s
}

// mkTxn builds a txn whose update has the given stored reads
// published, as if recorded by a prior read phase.
func mkTxn(number int, reads ...query.ReadQuery) *Txn {
	u := chase.NewUpdate(number, chase.Insert(model.NewTuple("T", model.Const("x"))))
	for _, q := range reads {
		u.PublishRead(q)
	}
	return &Txn{Upd: u, Number: number, deps: make(map[int]bool)}
}

func TestDirectConflictsDisjointRelations(t *testing.T) {
	st := storage.NewStore(conflictSchema())
	cfg := &Config{Tracker: Coarse{}}

	// Txn 2 stored a content read over S and a more-specific read over
	// R; writer 1 writes only into T — disjoint, so no marks.
	reader := mkTxn(2,
		&query.ContentRead{Rel: "S", Vals: []model.Value{model.Const("v")}, ReaderNo: 2},
		&query.MoreSpecificRead{Rel: "R", Pattern: []model.Value{model.Const("v"), model.Null(1)}, ReaderNo: 2},
	)
	_, w, _, err := st.Insert(1, model.NewTuple("T", model.Const("v")))
	if err != nil {
		t.Fatal(err)
	}

	var m Metrics
	cands := snapshotCandidatesInto(nil, []*Txn{reader}, 1)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want 1", len(cands))
	}
	if marked := directConflicts(st, cfg, cands, []storage.WriteRec{w}, &m); len(marked) != 0 {
		t.Fatalf("disjoint write marked %d victims", len(marked))
	}
	if m.DirectAbortRequests != 0 {
		t.Fatalf("disjoint write raised %d direct requests", m.DirectAbortRequests)
	}
}

func TestDirectConflictsOverlappingRelations(t *testing.T) {
	st := storage.NewStore(conflictSchema())
	cfg := &Config{Tracker: Coarse{}}

	reader := mkTxn(2,
		&query.ContentRead{Rel: "S", Vals: []model.Value{model.Const("v")}, ReaderNo: 2},
	)
	// Writer 1 inserts exactly the probed content: the stored answer
	// ("absent") retroactively changes.
	_, w, _, err := st.Insert(1, model.NewTuple("S", model.Const("v")))
	if err != nil {
		t.Fatal(err)
	}

	var m Metrics
	cands := snapshotCandidatesInto(nil, []*Txn{reader}, 1)
	marked := directConflicts(st, cfg, cands, []storage.WriteRec{w}, &m)
	if len(marked) != 1 || marked[0].t.Number != 2 {
		t.Fatalf("overlapping write marked %v, want txn 2", marked)
	}
	if m.DirectAbortRequests != 1 {
		t.Fatalf("DirectAbortRequests = %d, want 1", m.DirectAbortRequests)
	}
}

func TestDirectConflictsInvisibleWriter(t *testing.T) {
	st := storage.NewStore(conflictSchema())
	cfg := &Config{Tracker: Coarse{}}

	// Writer 3's insert is invisible to reader 2, so even identical
	// content cannot change reader 2's answers.
	reader := mkTxn(2,
		&query.ContentRead{Rel: "S", Vals: []model.Value{model.Const("v")}, ReaderNo: 2},
	)
	_, w, _, err := st.Insert(3, model.NewTuple("S", model.Const("v")))
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	// snapshotCandidates already filters by priority; check the query
	// layer agrees if forced through.
	cands := []conflictCandidate{{t: reader, prefix: reader.Upd.PublishedReads()}}
	if marked := directConflicts(st, cfg, cands, []storage.WriteRec{w}, &m); len(marked) != 0 {
		t.Fatalf("invisible write marked %v", marked)
	}
	if got := snapshotCandidatesInto(nil, []*Txn{reader}, 3); len(got) != 0 {
		t.Fatalf("snapshotCandidates included lower-numbered txn: %v", got)
	}
}

func TestDirectConflictsSkipsRestartedAttempt(t *testing.T) {
	st := storage.NewStore(conflictSchema())
	cfg := &Config{Tracker: Coarse{}}

	reader := mkTxn(2,
		&query.ContentRead{Rel: "S", Vals: []model.Value{model.Const("v")}, ReaderNo: 2},
	)
	_, w, _, err := st.Insert(1, model.NewTuple("S", model.Const("v")))
	if err != nil {
		t.Fatal(err)
	}
	cands := snapshotCandidatesInto(nil, []*Txn{reader}, 1)
	// The reader restarts between the snapshot and the check (as a
	// concurrent abort wave would cause): its frozen reads predate the
	// new attempt and must be ignored.
	reader.Upd.Reset()
	var m Metrics
	if marked := directConflicts(st, cfg, cands, []storage.WriteRec{w}, &m); len(marked) != 0 {
		t.Fatalf("restarted attempt still marked: %v", marked)
	}
	if m.DirectAbortRequests != 0 {
		t.Fatalf("restarted attempt counted %d requests", m.DirectAbortRequests)
	}
}

func TestDirectConflictsViolationReadRelations(t *testing.T) {
	// A stored violation query over mapping R(x,y) -> S(x): writes into
	// T are disjoint from the mapping's relations and never conflict;
	// writes into R that complete the premise do.
	st := storage.NewStore(conflictSchema())
	cfg := &Config{Tracker: Coarse{}}
	m1 := tgd.New("m1",
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("x"), tgd.V("y"))},
		[]tgd.Atom{tgd.NewAtom("S", tgd.V("x"))})
	if err := m1.Validate(st.Schema()); err != nil {
		t.Fatal(err)
	}

	// Reader 2 evaluates the seeded violation query on the current
	// (empty) store and stores it.
	seed := []model.Value{model.Const("a"), model.Const("b")}
	rq, _ := query.NewViolationRead(st, m1, "R", seed, query.SeedLHS, 2)
	reader := mkTxn(2, rq)
	cands := snapshotCandidatesInto(nil, []*Txn{reader}, 1)

	// Disjoint: writer 1 writes T.
	_, wT, _, err := st.Insert(1, model.NewTuple("T", model.Const("a")))
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if marked := directConflicts(st, cfg, cands, []storage.WriteRec{wT}, &m); len(marked) != 0 {
		t.Fatalf("disjoint T write marked %v", marked)
	}

	// Overlapping: writer 1 inserts the seed premise into R, creating
	// the violation the stored query did not see.
	_, wR, _, err := st.Insert(1, model.NewTuple("R", model.Const("a"), model.Const("b")))
	if err != nil {
		t.Fatal(err)
	}
	marked := directConflicts(st, cfg, cands, []storage.WriteRec{wR}, &m)
	if len(marked) != 1 {
		t.Fatalf("overlapping R write marked %d victims, want 1", len(marked))
	}
}
