package cc

import (
	"testing"

	"youtopia/internal/chase"
	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// These white-box tests pin the group-commit frontier: one exclusive
// acquisition drains the whole terminated prefix, in priority order,
// through a single storage CommitBatch.

func groupCommitScheduler(t *testing.T, n int) *ParallelScheduler {
	t.Helper()
	schema := model.NewSchema()
	schema.MustAddRelation("R", "a")
	st := storage.NewStore(schema)
	s := NewParallelScheduler(st, tgd.MustNewSet(), Config{Workers: 1})
	s.txns = make([]*Txn, n)
	s.status = make([]txnStatus, n)
	s.claimed = make([]bool, n)
	// Drive each update to termination through the engine (no mappings:
	// the initial insert is the whole chase).
	for i := 0; i < n; i++ {
		u := chase.NewUpdate(i+1, chase.Insert(model.NewTuple("R", model.Const(string(rune('a'+i))))))
		if _, err := s.engine.Step(u); err != nil {
			t.Fatal(err)
		}
		if _, err := s.engine.Step(u); err != nil {
			t.Fatal(err)
		}
		if u.State() != chase.StateTerminated {
			t.Fatalf("update %d state = %v, want terminated", i+1, u.State())
		}
		s.txns[i] = &Txn{Upd: u, Number: i + 1, deps: make(map[int]bool)}
		s.status[i] = statusTerminated
	}
	return s
}

func TestGroupCommitDrainsTerminatedPrefix(t *testing.T) {
	const n = 5
	s := groupCommitScheduler(t, n)
	if ok, err := s.execCommit(); err != nil || !ok {
		t.Fatalf("execCommit on a terminated prefix: ok=%v err=%v", ok, err)
	}
	for i := 1; i <= n; i++ {
		if !s.store.Committed(i) {
			t.Fatalf("update %d not committed by the drain", i)
		}
		if !s.txns[i-1].Committed() {
			t.Fatalf("txn %d mirror not committed", i)
		}
	}
	m := s.Metrics()
	if m.CommitBatches != 1 {
		t.Fatalf("CommitBatches = %d, want 1 (one drain for the whole prefix)", m.CommitBatches)
	}
	if m.MaxCommitBatch != n {
		t.Fatalf("MaxCommitBatch = %d, want %d", m.MaxCommitBatch, n)
	}
	s.mu.Lock()
	upTo := s.committedUpTo
	s.mu.Unlock()
	if upTo != n {
		t.Fatalf("committedUpTo = %d, want %d", upTo, n)
	}
	// A second drain finds nothing.
	if ok, err := s.execCommit(); err != nil || ok {
		t.Fatalf("second execCommit: ok=%v err=%v, want no progress", ok, err)
	}
}

func TestGroupCommitStopsAtFirstUnterminated(t *testing.T) {
	const n = 4
	s := groupCommitScheduler(t, n)
	// Update 3 is still mid-chase: reset it to a fresh (ready) attempt.
	s.store.Abort(3)
	s.txns[2].Upd.Reset()
	s.status[2] = statusReady

	if ok, err := s.execCommit(); err != nil || !ok {
		t.Fatalf("execCommit: ok=%v err=%v, want progress", ok, err)
	}
	for i := 1; i <= 2; i++ {
		if !s.txns[i-1].Committed() {
			t.Fatalf("txn %d (before the gap) not committed", i)
		}
	}
	for i := 3; i <= n; i++ {
		if s.txns[i-1].Committed() {
			t.Fatalf("txn %d (at/after the gap) committed across a non-terminated update", i)
		}
	}
	m := s.Metrics()
	if m.MaxCommitBatch != 2 {
		t.Fatalf("MaxCommitBatch = %d, want 2", m.MaxCommitBatch)
	}
}

func TestParallelRunBatchesCommits(t *testing.T) {
	// An end-to-end run on a conflict-free workload: with several
	// workers racing ahead of the frontier, at least one drain must
	// batch more than one update (the dispatcher only re-issues
	// workCommit after the previous drain returned).
	schema := model.NewSchema()
	schema.MustAddRelation("R", "a", "b")
	st := storage.NewStore(schema)
	var ops []chase.Op
	for i := 0; i < 40; i++ {
		ops = append(ops, chase.Insert(model.NewTuple("R",
			model.Const(string(rune('a'+i%26))), model.Const(string(rune('a'+i/26))))))
	}
	s := NewParallelScheduler(st, tgd.MustNewSet(), Config{Workers: 4})
	m, err := s.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommitBatches == 0 || m.CommitBatches > m.Submitted {
		t.Fatalf("CommitBatches = %d out of range (submitted %d)", m.CommitBatches, m.Submitted)
	}
	for _, txn := range s.Txns() {
		if !txn.Committed() {
			t.Fatalf("update %d never committed", txn.Number)
		}
	}
}
