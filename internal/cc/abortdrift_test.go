package cc

import (
	"testing"

	"youtopia/internal/chase"
	"youtopia/internal/model"
	"youtopia/internal/query"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// This file is the minimized repro of the pre-existing serializability
// flake (ROADMAP: TestParallelEquivalenceOnDuplicateHeavySeeds,
// ~1-in-150 rounds under -race -count=25; near-deterministic on a
// 1-core host). Root cause: write-side conflict checks evaluate the
// reader's recorded answer against the read-time state plus the
// interference that exists at check time — and a later ABORT can take
// part of that interference back. The removed write may have been
// exactly what made an earlier verdict pass (a deletion masking a
// joint violation, a duplicate masking an insert), and if the aborted
// writer's rerun takes a different path, no subsequent write ever
// re-asks the question: the reader commits over a state its guarded
// answer never saw. Store.Abort also advances no stripe sequence, so
// the parallel scheduler's seq-based revalidation was structurally
// blind to it. The fix makes removals first-class conflict events:
// executeAbortWave re-checks every surviving read prefix against each
// rollback's removed writes (ViolationRead.AffectedByRemoval) and
// aborts readers whose guarded answers drifted.

// driftFixture builds the minimal drift scenario:
//
//	mapping m: A(x) & B(x) -> C(x); committed instance {A(a)}.
//	update 9 reads the seeded violation query (answer: no violation).
//	update 3 deletes A(a)  — check passes: still no violation.
//	update 5 inserts B(a)  — check passes: A(a) is deleted, no join.
//	update 3 aborts        — A(a) is back; A(a) & B(a) now violate m,
//	                         but no write-side check will ever run again.
func driftFixture(t *testing.T) (storage.Backend, *Config, []*Txn, *query.ViolationRead) {
	t.Helper()
	schema := model.NewSchema()
	schema.MustAddRelation("A", "x")
	schema.MustAddRelation("B", "x")
	schema.MustAddRelation("C", "x")
	m := tgd.New("m",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x")), tgd.NewAtom("B", tgd.V("x"))},
		[]tgd.Atom{tgd.NewAtom("C", tgd.V("x"))})
	if err := m.Validate(schema); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(schema)
	a := model.Const("a")
	if _, err := st.Load(model.NewTuple("A", a)); err != nil {
		t.Fatal(err)
	}

	txns := make([]*Txn, 9)
	for i := range txns {
		u := chase.NewUpdate(i+1, chase.Insert(model.NewTuple("C", a)))
		txns[i] = &Txn{Upd: u, Number: i + 1, deps: make(map[int]bool)}
	}
	cfg := &Config{Tracker: Coarse{}}

	// Update 9 performs the seeded violation read: A(a) present, B(a)
	// absent — no violation to repair.
	q, vs := query.NewViolationRead(st, m, "A", []model.Value{a}, query.SeedLHS, 9)
	if len(vs) != 0 {
		t.Fatalf("fixture expects no initial violation, got %v", vs)
	}
	txns[8].Upd.PublishRead(q)

	// Update 3 deletes A(a); the write-side check honestly passes (a
	// missing A cannot complete the join).
	recs, err := st.DeleteContent(3, model.NewTuple("A", a))
	if err != nil || len(recs) != 1 {
		t.Fatalf("delete A(a): recs=%v err=%v", recs, err)
	}
	var mtr Metrics
	var scratch stepScratch
	if victims := collectDirect(st, cfg, txns, recs, &mtr, &scratch); len(victims) != 0 {
		t.Fatalf("delete of A(a) should pass the write-side check, marked %v", victims)
	}

	// Update 5 inserts B(a); the check again honestly passes — at this
	// moment A(a) is deleted in update 9's reconstruction window.
	_, wB, ins, err := st.Insert(5, model.NewTuple("B", a))
	if err != nil || !ins {
		t.Fatalf("insert B(a): ins=%v err=%v", ins, err)
	}
	if victims := collectDirect(st, cfg, txns, []storage.WriteRec{wB}, &mtr, &scratch); len(victims) != 0 {
		t.Fatalf("insert of B(a) should pass the write-side check, marked %v", victims)
	}
	return st, cfg, txns, q
}

// TestAbortRemovalDriftAbortsStaleReader: aborting update 3 must drag
// update 9 into the wave — its guarded "no violation" answer no longer
// matches its read-time state run forward over the surviving
// interference.
func TestAbortRemovalDriftAbortsStaleReader(t *testing.T) {
	st, cfg, txns, _ := driftFixture(t)
	var m Metrics
	err := executeAbortWave(st, cfg, txns, []*Txn{txns[2]}, &m, func(tx *Txn) error {
		return rollbackTxn(st, cfg, tx, &m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.RemovalAbortRequests == 0 {
		t.Fatal("abort-side drift check never fired")
	}
	if txns[2].Aborts() != 1 {
		t.Fatalf("update 3 aborted %d times, want 1", txns[2].Aborts())
	}
	if txns[8].Aborts() != 1 {
		t.Fatalf("update 9 (the stale reader) aborted %d times, want 1", txns[8].Aborts())
	}
	// Sanity: untouched bystanders stay untouched.
	if txns[4].Aborts() != 0 {
		t.Fatalf("update 5 aborted %d times, want 0", txns[4].Aborts())
	}
}

// TestAbortRemovalDriftDetectedByQuery pins the query-level primitive:
// AffectedByRemoval is false while the interference still cancels out,
// true once the removal exposes the drift, and false for irrelevant
// removals.
func TestAbortRemovalDriftDetectedByQuery(t *testing.T) {
	st, _, _, q := driftFixture(t)
	removed := st.WritesOf(3)
	if len(removed) != 1 {
		t.Fatalf("update 3 should have one live write, got %v", removed)
	}
	// Before the rollback the store still carries the deletion: the
	// reconstruction has no violation and no drift.
	if q.AffectedByRemoval(st, removed) {
		t.Fatal("drift reported while the deletion is still in place")
	}
	st.Abort(3)
	if !q.AffectedByRemoval(st, removed) {
		t.Fatal("drift not reported after the deletion was rolled back")
	}
	// A removal that cannot touch the mapping is filtered structurally.
	irrelevant := []storage.WriteRec{{Writer: 3, Rel: "nope", Op: storage.OpInsert}}
	if q.AffectedByRemoval(st, irrelevant) {
		t.Fatal("irrelevant removal reported as drift")
	}
}
