package cc

import (
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
)

// TestCandidateCollectionAllocFree pins the ISSUE-4 acceptance
// criterion: conflict-candidate collection performs zero heap
// allocations per step in steady state — the published read-prefix
// records are loaded pointer-by-pointer into a warm scratch buffer,
// with no locking, copying, or map traffic.
func TestCandidateCollectionAllocFree(t *testing.T) {
	probe := CandidateProbe(64)
	probe() // warm the scratch buffer
	if got := testing.AllocsPerRun(200, probe); got != 0 {
		t.Fatalf("candidate collection allocates %.1f/op in steady state, want 0", got)
	}
}

// TestWrittenRelSeqsAllocFree covers the other half of the write
// phase's coordination snapshot: the written-relation sequence capture
// reuses its scratch the same way.
func TestWrittenRelSeqsAllocFree(t *testing.T) {
	st := storage.NewStore(conflictSchema())
	_, w, _, err := st.Insert(1, model.NewTuple("S", model.Const("v")))
	if err != nil {
		t.Fatal(err)
	}
	writes := []storage.WriteRec{w, w, w}
	var scratch []relSeq
	probe := func() {
		scratch = writtenRelSeqsInto(scratch[:0], st, writes)
	}
	probe()
	if got := testing.AllocsPerRun(200, probe); got != 0 {
		t.Fatalf("relSeq capture allocates %.1f/op in steady state, want 0", got)
	}
}
