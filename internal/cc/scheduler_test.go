package cc_test

import (
	"strings"
	"testing"

	"youtopia/internal/cc"
	"youtopia/internal/chase"
	"youtopia/internal/fixtures"
	"youtopia/internal/model"
	"youtopia/internal/serial"
	"youtopia/internal/simuser"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

func c(s string) model.Value { return model.Const(s) }
func n(id int64) model.Value { return model.Null(id) }
func tup(rel string, vals ...model.Value) model.Tuple {
	return model.NewTuple(rel, vals...)
}

func travel(t *testing.T) (*storage.Store, *tgd.Set) {
	t.Helper()
	_, set, st, err := fixtures.Travel()
	if err != nil {
		t.Fatal(err)
	}
	return st, set
}

// example31User resolves u1's negative frontier by deleting the T
// tuple, after declining the first `delay` polls so that u2 runs ahead
// — reproducing the interleaving of Example 3.1.
type example31User struct {
	st    *storage.Store
	delay int
	polls int
}

func (u *example31User) Decide(upd *chase.Update, g *chase.FrontierGroup, opts []chase.Decision, _ string) (chase.Decision, bool) {
	if u.polls < u.delay {
		u.polls++
		return chase.Decision{}, false
	}
	snap := u.st.Snap(upd.Number)
	for _, id := range g.Candidates {
		if tv, ok := snap.GetTuple(id); ok && tv.Rel == "T" {
			return chase.Decision{Kind: chase.DecideDelete, Subset: []storage.TupleID{id}}, true
		}
	}
	return opts[0], true
}

func example31Ops() []chase.Op {
	return []chase.Op{
		chase.Delete(tup("R", c("XYZ"), c("Geneva Winery"), c("Great!"))), // u1
		chase.Insert(tup("V", c("Syracuse"), c("Math Conf"))),             // u2
	}
}

func TestExample31InterferencePrevented(t *testing.T) {
	// The paper's motivating anomaly: u2 prematurely inserts E(Math
	// Conf, Geneva Winery) while u1's deletion is waiting for a
	// frontier operation that will delete the witness tuple T(Geneva
	// Winery, XYZ, Syracuse). Algorithm 4 must abort u2 when u1's
	// delete lands, and u2's re-run must not re-insert the E tuple.
	st, set := travel(t)
	user := &example31User{st: st, delay: 3}
	sched := cc.NewScheduler(st, set, cc.Config{
		Tracker: cc.Precise{},
		Policy:  cc.PolicyRoundRobinStep,
		User:    user,
	})
	m, err := sched.Run(example31Ops())
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborts != 1 {
		t.Fatalf("expected exactly one abort (u2), got %+v", m)
	}
	if m.DirectAbortRequests < 1 {
		t.Fatalf("expected a direct abort request, got %+v", m)
	}
	final := st.Snap(1000)
	if final.ContainsContent(tup("E", c("Math Conf"), c("Geneva Winery"))) {
		t.Fatalf("premature E tuple survived — interference not prevented:\n%s", st.Dump(1000))
	}
	if final.ContainsContent(tup("T", c("Geneva Winery"), c("XYZ"), c("Syracuse"))) {
		t.Fatal("u1's frontier deletion missing")
	}
	if !final.ContainsContent(tup("V", c("Syracuse"), c("Math Conf"))) {
		t.Fatal("u2's insert missing after re-run")
	}

	// The final state must equal the serial execution's.
	st2, set2 := travel(t)
	if _, err := serial.Execute(st2, set2, example31Ops(), &example31User{st: st2}); err != nil {
		t.Fatal(err)
	}
	eq, err := serial.Equivalent(st.Snap(1000).VisibleFacts(), st2.Snap(1000).VisibleFacts())
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("concurrent final state differs from serial:\n%s",
			serial.Explain(st.Snap(1000).VisibleFacts(), st2.Snap(1000).VisibleFacts()))
	}
}

func TestExample31FlagMode(t *testing.T) {
	// In detection mode the anomaly is flagged but not prevented: the
	// premature E tuple survives and Flagged counts the conflict.
	st, set := travel(t)
	user := &example31User{st: st, delay: 3}
	sched := cc.NewScheduler(st, set, cc.Config{
		Tracker: cc.Precise{},
		Mode:    cc.ModeFlag,
		User:    user,
	})
	m, err := sched.Run(example31Ops())
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborts != 0 {
		t.Fatalf("flag mode must not abort: %+v", m)
	}
	if m.Flagged == 0 {
		t.Fatalf("flag mode must flag the interference: %+v", m)
	}
	if !st.Snap(1000).ContainsContent(tup("E", c("Math Conf"), c("Geneva Winery"))) {
		t.Fatal("flag mode must let the premature insert stand")
	}
}

func TestNoConflictNoAbort(t *testing.T) {
	// Disjoint updates never abort under any tracker.
	for _, tr := range []cc.Tracker{cc.Naive{}, cc.Coarse{}, cc.Precise{}} {
		st, set := travel(t)
		sched := cc.NewScheduler(st, set, cc.Config{Tracker: tr, User: simuser.New(7)})
		ops := []chase.Op{
			chase.Insert(tup("A", c("Letchworth"), c("Letchworth Falls"))),
			chase.Insert(tup("V", c("Ithaca"), c("Gorges Conf"))),
		}
		m, err := sched.Run(ops)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if m.Aborts != 0 {
			t.Fatalf("%s: unexpected aborts: %+v", tr.Name(), m)
		}
		if m.Runs != 2 {
			t.Fatalf("%s: runs = %d", tr.Name(), m.Runs)
		}
	}
}

func TestNaiveCascadesMoreThanPrecise(t *testing.T) {
	// Three updates: u1 conflicts with u2 (same mapping territory),
	// while u3 is completely unrelated. NAIVE must drag u3 down with
	// u2; PRECISE must not.
	ops := []chase.Op{
		chase.Delete(tup("R", c("XYZ"), c("Geneva Winery"), c("Great!"))), // u1, slow frontier
		chase.Insert(tup("V", c("Syracuse"), c("Math Conf"))),             // u2, conflicts with u1
		chase.Insert(tup("A", c("Letchworth"), c("Letchworth Falls"))),    // u3, unrelated
	}
	run := func(tr cc.Tracker) cc.Metrics {
		st, set := travel(t)
		sched := cc.NewScheduler(st, set, cc.Config{
			Tracker: tr,
			User:    &example31User{st: st, delay: 4},
		})
		m, err := sched.Run(ops)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		return m
	}
	naive := run(cc.Naive{})
	precise := run(cc.Precise{})
	if naive.Aborts <= precise.Aborts {
		t.Fatalf("NAIVE must abort more: naive %+v vs precise %+v", naive, precise)
	}
	if naive.CascadingAbortRequests == 0 {
		t.Fatalf("NAIVE must request cascading aborts: %+v", naive)
	}
	if precise.CascadingAbortRequests != 0 {
		t.Fatalf("PRECISE must not cascade here: %+v", precise)
	}
}

func TestConcurrentEqualsSerial(t *testing.T) {
	// Theorem 4.4, empirically: for a battery of seeded random
	// workloads over the travel repository, the conflict-serializable
	// concurrent execution produces the same final database as the
	// serial execution, up to null renaming — for every tracker.
	workload := func(seed int64) []chase.Op {
		// Deterministic small mixed workload.
		rng := newRand(seed)
		var ops []chase.Op
		cities := []string{"Boston", "Albany", "Buffalo", "Utica"}
		attractions := []string{"Falls", "Gorge", "Museum"}
		for i := 0; i < 6; i++ {
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, chase.Insert(tup("C", c(cities[rng.Intn(len(cities))]))))
			case 1:
				ops = append(ops, chase.Insert(tup("A", c(cities[rng.Intn(len(cities))]), c(attractions[rng.Intn(len(attractions))]))))
			case 2:
				ops = append(ops, chase.Insert(tup("V", c("Syracuse"), c("Conf"+cities[rng.Intn(len(cities))]))))
			case 3:
				ops = append(ops, chase.Delete(tup("R", c("XYZ"), c("Geneva Winery"), c("Great!"))))
			}
		}
		return ops
	}
	trackers := []cc.Tracker{cc.Naive{}, cc.Coarse{}, cc.Precise{}}
	for seed := int64(0); seed < 10; seed++ {
		ops := workload(seed)
		// Serial reference.
		stSerial, setSerial := travel(t)
		if _, err := serial.Execute(stSerial, setSerial, ops, simuser.New(uint64(seed))); err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		want := stSerial.Snap(1 << 30).VisibleFacts()

		for _, tr := range trackers {
			st, set := travel(t)
			sched := cc.NewScheduler(st, set, cc.Config{
				Tracker:            tr,
				Policy:             cc.PolicyRoundRobinStep,
				User:               simuser.New(uint64(seed)),
				MaxAbortsPerUpdate: 200,
			})
			if _, err := sched.Run(ops); err != nil {
				t.Fatalf("seed %d %s: %v", seed, tr.Name(), err)
			}
			got := st.Snap(1 << 30).VisibleFacts()
			eq, err := serial.Equivalent(got, want)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tr.Name(), err)
			}
			if !eq {
				t.Fatalf("seed %d %s: concurrent != serial\n%s", seed, tr.Name(),
					serial.Explain(got, want))
			}
		}
	}
}

func TestStratumPolicy(t *testing.T) {
	st, set := travel(t)
	sched := cc.NewScheduler(st, set, cc.Config{
		Tracker: cc.Coarse{},
		Policy:  cc.PolicyRoundRobinStratum,
		User:    simuser.New(3),
	})
	m, err := sched.Run(example31Ops())
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestHybridTracker(t *testing.T) {
	st, set := travel(t)
	h := &cc.Hybrid{PreciseFor: cc.EscalateAfter(1)}
	sched := cc.NewScheduler(st, set, cc.Config{
		Tracker: h,
		User:    &example31User{st: st, delay: 3},
	})
	if h.Name() != "HYBRID" {
		t.Fatal("name")
	}
	m, err := sched.Run(example31Ops())
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborts == 0 {
		t.Fatalf("expected the Example 3.1 abort: %+v", m)
	}
}

func TestCommitOrder(t *testing.T) {
	st, set := travel(t)
	sched := cc.NewScheduler(st, set, cc.Config{Tracker: cc.Coarse{}, User: simuser.New(1)})
	ops := []chase.Op{
		chase.Insert(tup("V", c("Ithaca"), c("ConfA"))),
		chase.Insert(tup("V", c("Ithaca"), c("ConfB"))),
	}
	if _, err := sched.Run(ops); err != nil {
		t.Fatal(err)
	}
	for _, txn := range sched.Txns() {
		if !txn.Committed() {
			t.Fatalf("txn %d not committed", txn.Number)
		}
	}
	if !st.Committed(1) || !st.Committed(2) {
		t.Fatal("store commit flags missing")
	}
}

func TestAbsentUserStalls(t *testing.T) {
	st, set := travel(t)
	sched := cc.NewScheduler(st, set, cc.Config{
		Tracker:       cc.Coarse{},
		User:          simuser.Silent(),
		MaxIdleRounds: 50,
	})
	_, err := sched.Run([]chase.Op{
		chase.Delete(tup("R", c("XYZ"), c("Geneva Winery"), c("Great!"))),
	})
	if err == nil || !strings.Contains(err.Error(), "no progress") {
		t.Fatalf("expected stall error, got %v", err)
	}
}

func TestTrackerByName(t *testing.T) {
	for _, name := range []string{"NAIVE", "COARSE", "PRECISE", "naive", "coarse", "precise"} {
		tr, err := cc.TrackerByName(name)
		if err != nil || tr == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := cc.TrackerByName("nope"); err == nil {
		t.Fatal("unknown tracker accepted")
	}
}

func TestPolicyAndModeStrings(t *testing.T) {
	if cc.PolicyRoundRobinStep.String() != "round-robin-step" ||
		cc.PolicyRoundRobinStratum.String() != "round-robin-stratum" ||
		cc.PolicySerial.String() != "serial" {
		t.Fatal("policy strings")
	}
	if cc.ModePrevent.String() != "prevent" || cc.ModeFlag.String() != "flag" {
		t.Fatal("mode strings")
	}
}

func TestMetricsPerUpdateTime(t *testing.T) {
	m := cc.Metrics{}
	if m.PerUpdateTime() != 0 {
		t.Fatal("zero runs must give zero")
	}
	m.Runs = 4
	m.WallTime = 400
	if m.PerUpdateTime() != 100 {
		t.Fatalf("PerUpdateTime = %v", m.PerUpdateTime())
	}
}

// newRand is a tiny deterministic PRNG for workload construction,
// avoiding importing math/rand in multiple helpers.
type smallRand struct{ state uint64 }

func newRand(seed int64) *smallRand {
	return &smallRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *smallRand) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}
