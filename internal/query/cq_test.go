package query

import (
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

func cqWorld(t *testing.T) *storage.Store {
	t.Helper()
	s := model.NewSchema()
	s.MustAddRelation("T", "attraction", "company", "start")
	s.MustAddRelation("R", "company", "attraction", "review")
	st := storage.NewStore(s)
	load := func(tp model.Tuple) {
		t.Helper()
		if _, err := st.Load(tp); err != nil {
			t.Fatal(err)
		}
	}
	load(tup("T", c("Winery"), c("XYZ"), c("Syracuse")))
	load(tup("T", c("Falls"), n(1), c("Toronto"))) // unknown company x1
	load(tup("R", c("XYZ"), c("Winery"), c("Great!")))
	load(tup("R", n(1), c("Falls"), n(2))) // review by the same unknown company
	return st
}

func q(name string, head []string, body ...tgd.Atom) *CQ {
	return &CQ{Name: name, Head: head, Body: body}
}

func TestCertainAnswersGroundOnly(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	// Which companies run tours? x1 is unknown, so only XYZ is certain.
	companies := q("companies", []string{"co"},
		tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s")))
	got := e.CertainAnswers(companies)
	if len(got) != 1 || got[0].Vals[0] != c("XYZ") {
		t.Fatalf("certain = %v", got)
	}
}

func TestCertainAnswersJoinThroughNull(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	// Which attractions have a review by their tour company? The
	// Falls row joins through x1 = x1 — a certain fact even though the
	// company is unknown (nulls join by identity in naive tables).
	reviewed := q("reviewed", []string{"a"},
		tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s")),
		tgd.NewAtom("R", tgd.V("co"), tgd.V("a"), tgd.V("r")))
	got := e.CertainAnswers(reviewed)
	if len(got) != 2 {
		t.Fatalf("certain = %v (the x1 join is certain!)", got)
	}
}

func TestBestEffortIncludesNullRows(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	companies := q("companies", []string{"co"},
		tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s")))
	got := e.BestEffortAnswers(companies)
	if len(got) != 2 {
		t.Fatalf("best-effort = %v", got)
	}
	hasNull := false
	for _, row := range got {
		if row.Vals[0].IsNull() {
			hasNull = true
		}
	}
	if !hasNull {
		t.Fatalf("best-effort must surface the unknown company: %v", got)
	}
}

func TestBestEffortUnifiesNullWithConstant(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	// Does ABC run any tour? Certainly not (no ground row), but the
	// unknown company x1 COULD be ABC — best effort reports the Falls
	// tour as potentially relevant.
	abc := q("abc_tours", []string{"a"},
		tgd.NewAtom("T", tgd.V("a"), tgd.C("ABC"), tgd.V("s")))
	if got := e.CertainAnswers(abc); len(got) != 0 {
		t.Fatalf("certain = %v", got)
	}
	got := e.BestEffortAnswers(abc)
	if len(got) != 1 || got[0].Vals[0] != c("Falls") {
		t.Fatalf("best-effort = %v", got)
	}
}

func TestBestEffortUnificationIsConsistent(t *testing.T) {
	// Within one answer, a null unifies with only one constant: asking
	// for a company that is simultaneously ABC and DEF can never match
	// through x1.
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	contradiction := q("contra", []string{"a"},
		tgd.NewAtom("T", tgd.V("a"), tgd.C("ABC"), tgd.V("s")),
		tgd.NewAtom("R", tgd.C("DEF"), tgd.V("a"), tgd.V("r")))
	if got := e.BestEffortAnswers(contradiction); len(got) != 0 {
		t.Fatalf("inconsistent unification accepted: %v", got)
	}
	// But the SAME constant on both sides unifies fine through x1.
	consistent := q("consist", []string{"a"},
		tgd.NewAtom("T", tgd.V("a"), tgd.C("ABC"), tgd.V("s")),
		tgd.NewAtom("R", tgd.C("ABC"), tgd.V("a"), tgd.V("r")))
	got := e.BestEffortAnswers(consistent)
	if len(got) != 1 || got[0].Vals[0] != c("Falls") {
		t.Fatalf("consistent unification missing: %v", got)
	}
}

func TestBestEffortSupersetOfCertain(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	queries := []*CQ{
		q("q1", []string{"co"}, tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s"))),
		q("q2", []string{"a", "r"},
			tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s")),
			tgd.NewAtom("R", tgd.V("co"), tgd.V("a"), tgd.V("r"))),
	}
	for _, qq := range queries {
		certain := e.CertainAnswers(qq)
		best := e.BestEffortAnswers(qq)
		bestSet := map[string]bool{}
		for _, row := range best {
			bestSet[row.Key()] = true
		}
		for _, row := range certain {
			if !bestSet[row.Key()] {
				t.Fatalf("%s: certain answer %v missing from best-effort %v", qq.Name, row, best)
			}
		}
	}
}

func TestCQValidate(t *testing.T) {
	s := model.NewSchema()
	s.MustAddRelation("T", "a", "b")
	cases := []struct {
		name string
		q    *CQ
	}{
		{"unnamed", q("", []string{"x"}, tgd.NewAtom("T", tgd.V("x"), tgd.V("y")))},
		{"empty body", q("q", []string{"x"})},
		{"unsafe head", q("q", []string{"z"}, tgd.NewAtom("T", tgd.V("x"), tgd.V("y")))},
		{"bad arity", q("q", []string{"x"}, tgd.NewAtom("T", tgd.V("x")))},
		{"unknown rel", q("q", []string{"x"}, tgd.NewAtom("Z", tgd.V("x")))},
		{"dup head", q("q", []string{"x", "x"}, tgd.NewAtom("T", tgd.V("x"), tgd.V("y")))},
	}
	for _, tc := range cases {
		if err := tc.q.Validate(s); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	good := q("q", []string{"x", "y"}, tgd.NewAtom("T", tgd.V("x"), tgd.V("y")))
	if err := good.Validate(s); err != nil {
		t.Fatal(err)
	}
	if good.String() != "q(x, y) <- T(x, y)" {
		t.Fatalf("String = %q", good.String())
	}
}

func TestCQAnswersDeterministic(t *testing.T) {
	st := cqWorld(t)
	e := NewEngine(st.Snap(0))
	qq := q("q", []string{"co", "a"},
		tgd.NewAtom("T", tgd.V("a"), tgd.V("co"), tgd.V("s")))
	first := e.BestEffortAnswers(qq)
	for i := 0; i < 5; i++ {
		again := e.BestEffortAnswers(qq)
		if len(again) != len(first) {
			t.Fatal("nondeterministic answer count")
		}
		for j := range again {
			if !again[j].Equal(first[j]) {
				t.Fatal("nondeterministic answer order")
			}
		}
	}
}
