package query

import (
	"strings"
	"testing"

	"youtopia/internal/model"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindViolation:    "violation",
		KindMoreSpecific: "more-specific",
		KindNullOcc:      "null-occurrence",
		KindContent:      "content",
		Kind(9):          "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestViolationReadAffectedByExample31(t *testing.T) {
	// Example 3.1 is the motivating interference: u2 (number 2) reads a
	// violation query over sigma4 after inserting V(Syracuse, Math
	// Conf); u1 (number 1) later deletes T(Geneva Winery, XYZ,
	// Syracuse), which retroactively changes u2's answer.
	st, set := fig2(t)
	sigma4, _ := set.ByName("sigma4")

	// u2 inserts V(Syracuse, Math Conf) and poses its violation query.
	_, wIns, _, err := st.Insert(2, tup("V", c("Syracuse"), c("Math Conf")))
	if err != nil {
		t.Fatal(err)
	}
	q, got := NewViolationRead(st, sigma4, wIns.Rel, wIns.After, SeedLHS, 2)
	if len(got) != 1 {
		t.Fatalf("u2 must see one violation of sigma4, got %v", got)
	}

	// u1 deletes the witness tuple T(Geneva Winery, XYZ, Syracuse).
	recs, err := st.DeleteContent(1, tup("T", c("Geneva Winery"), c("XYZ"), c("Syracuse")))
	if err != nil || len(recs) != 1 {
		t.Fatalf("delete: %v %v", recs, err)
	}
	if !q.AffectedBy(st, recs[0]) {
		t.Fatal("u1's delete must retroactively change u2's violation query")
	}
}

func TestViolationReadUnaffectedByIrrelevantWrite(t *testing.T) {
	st, set := fig2(t)
	sigma4, _ := set.ByName("sigma4")
	_, wIns, _, _ := st.Insert(2, tup("V", c("Syracuse"), c("Math Conf")))
	q, _ := NewViolationRead(st, sigma4, wIns.Rel, wIns.After, SeedLHS, 2)

	// A write to C is outside sigma4's relations entirely.
	_, recC, _, _ := st.Insert(1, tup("C", c("Boston")))
	if q.AffectedBy(st, recC) {
		t.Fatal("write to C cannot affect a sigma4 violation query")
	}
	// A T write that does not join with the seed (different city).
	_, recT, _, _ := st.Insert(1, tup("T", c("Niagara Falls"), c("QQQ"), c("Toronto")))
	if q.AffectedBy(st, recT) {
		t.Fatal("non-joining T write must not affect the seeded query")
	}
	// A T write that does join (starts in Syracuse) creates a new
	// violation for the seeded query.
	_, recT2, _, _ := st.Insert(1, tup("T", c("Niagara Falls"), c("QQQ"), c("Syracuse")))
	if !q.AffectedBy(st, recT2) {
		t.Fatal("joining T insert must affect the seeded query")
	}
}

func TestViolationReadInvisibleWriter(t *testing.T) {
	st, set := fig2(t)
	sigma4, _ := set.ByName("sigma4")
	_, wIns, _, _ := st.Insert(2, tup("V", c("Syracuse"), c("Math Conf")))
	q, _ := NewViolationRead(st, sigma4, wIns.Rel, wIns.After, SeedLHS, 2)
	// A write by update 7 is invisible to reader 2 and cannot affect it.
	_, rec, _, _ := st.Insert(7, tup("T", c("Niagara Falls"), c("QQQ"), c("Syracuse")))
	if q.AffectedBy(st, rec) {
		t.Fatal("invisible write must not affect the query")
	}
}

func TestViolationReadRHSCompletionRemovesViolation(t *testing.T) {
	// An insert completing the RHS removes a violation: also a
	// retroactive change.
	st, set := fig2(t)
	sigma3, _ := set.ByName("sigma3")
	// u2 inserts a tour with no review: a violation exists.
	_, wIns, _, _ := st.Insert(2, tup("T", c("Niagara Falls"), c("ABC"), c("Buffalo")))
	q, got := NewViolationRead(st, sigma3, wIns.Rel, wIns.After, SeedLHS, 2)
	if len(got) != 1 {
		t.Fatalf("violation expected, got %v", got)
	}
	// u1 supplies the review: the violation disappears retroactively.
	_, rec, _, _ := st.Insert(1, tup("R", c("ABC"), c("Niagara Falls"), c("ok")))
	if !q.AffectedBy(st, rec) {
		t.Fatal("RHS completion must affect the violation query")
	}
}

func TestMoreSpecificReadAffectedBy(t *testing.T) {
	st, _ := fig2(t)
	// Frontier tuple C(x9): any C write more specific than the pattern
	// affects the query.
	q := &MoreSpecificRead{Rel: "C", Pattern: []model.Value{n(9)}, ReaderNo: 3}
	_, ins, _, _ := st.Insert(1, tup("C", c("NYC")))
	if !q.AffectedBy(st, ins) {
		t.Fatal("C insert must affect C(x9) more-specific query")
	}
	recs, _ := st.DeleteContent(2, tup("C", c("Ithaca")))
	if !q.AffectedBy(st, recs[0]) {
		t.Fatal("C delete must affect the query")
	}
	_, insS, _, _ := st.Insert(1, tup("S", c("JFK"), c("NYC"), c("NYC")))
	if q.AffectedBy(st, insS) {
		t.Fatal("S write must not affect a C query")
	}
	// Invisible writer.
	_, insHi, _, _ := st.Insert(9, tup("C", c("LA")))
	if q.AffectedBy(st, insHi) {
		t.Fatal("invisible write must not affect the query")
	}
}

func TestMoreSpecificReadConstantPattern(t *testing.T) {
	st, _ := fig2(t)
	q := &MoreSpecificRead{Rel: "S", Pattern: []model.Value{n(7), n(8), c("NYC")}, ReaderNo: 3}
	_, w1, _, _ := st.Insert(1, tup("S", c("JFK"), c("NYC"), c("NYC")))
	if !q.AffectedBy(st, w1) {
		t.Fatal("matching city must affect")
	}
	_, w2, _, _ := st.Insert(1, tup("S", c("ALB"), c("Albany"), c("Albany")))
	if q.AffectedBy(st, w2) {
		t.Fatal("non-matching city must not affect")
	}
}

func TestNullOccReadAffectedBy(t *testing.T) {
	st, _ := fig2(t)
	q := &NullOccRead{Null: n(1), ReaderNo: 5}
	// Insert containing x1.
	_, w, _, _ := st.Insert(1, tup("C", n(1)))
	if !q.AffectedBy(st, w) {
		t.Fatal("insert containing x1 must affect")
	}
	// Replacement of x1 rewrites tuples containing it.
	recs, err := st.ReplaceNull(2, n(1), c("ABC Tours"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || !q.AffectedBy(st, recs[0]) {
		t.Fatal("null replacement must affect")
	}
	// Unrelated write.
	_, w2, _, _ := st.Insert(1, tup("C", c("plain")))
	if q.AffectedBy(st, w2) {
		t.Fatal("unrelated write must not affect")
	}
}

func TestContentReadAffectedBy(t *testing.T) {
	st, _ := fig2(t)
	q := &ContentRead{Rel: "C", Vals: []model.Value{c("Ithaca")}, ReaderNo: 4}
	recs, _ := st.DeleteContent(1, tup("C", c("Ithaca")))
	if !q.AffectedBy(st, recs[0]) {
		t.Fatal("deleting the probed content must affect")
	}
	_, w, _, _ := st.Insert(2, tup("C", c("Boston")))
	if q.AffectedBy(st, w) {
		t.Fatal("different content must not affect")
	}
}

func TestReadQueryMetadata(t *testing.T) {
	st, set := fig2(t)
	sigma3, _ := set.ByName("sigma3")
	qs := []ReadQuery{
		&ViolationRead{TGD: sigma3, SeedRel: "T", SeedVals: []model.Value{c("a"), c("b"), c("d")}, ReaderNo: 2},
		&MoreSpecificRead{Rel: "C", Pattern: []model.Value{n(1)}, ReaderNo: 2},
		&NullOccRead{Null: n(1), ReaderNo: 2},
		&ContentRead{Rel: "C", Vals: []model.Value{c("a")}, ReaderNo: 2},
	}
	wantKinds := []Kind{KindViolation, KindMoreSpecific, KindNullOcc, KindContent}
	for i, q := range qs {
		if q.Kind() != wantKinds[i] {
			t.Errorf("query %d kind = %v", i, q.Kind())
		}
		if q.Reader() != 2 {
			t.Errorf("query %d reader = %d", i, q.Reader())
		}
		if q.String() == "" {
			t.Errorf("query %d has empty String", i)
		}
	}
	if rels := qs[0].Relations(); len(rels) != 3 {
		t.Errorf("violation query relations = %v", rels)
	}
	if rels := qs[1].Relations(); len(rels) != 1 || rels[0] != "C" {
		t.Errorf("more-specific relations = %v", rels)
	}
	if rels := qs[2].Relations(); rels != nil {
		t.Errorf("null-occ relations = %v", rels)
	}
	if !strings.Contains(qs[0].String(), "sigma3") {
		t.Errorf("violation query string = %q", qs[0].String())
	}
	_ = st
}
