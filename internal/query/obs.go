package query

import "youtopia/internal/obs"

// Process-wide query-layer counters on the shared registry, resolved
// once at package init. Plan-cache traffic is counted at the (cheap)
// per-evaluation PlanFor call; the per-candidate join counters are
// accumulated in plain engine-local integers inside the hot loop and
// flushed with one atomic add per top-level evaluation (Engine.
// flushObs), so observability costs the join nothing per row.
var (
	obsPlansCompiled = obs.Default.Counter("query_plans_compiled")
	obsPlanCacheHits = obs.Default.Counter("query_plan_cache_hits")
	obsIndexProbes   = obs.Default.Counter("query_index_probes_total")
	obsJoinSteps     = obs.Default.Counter("query_join_steps_total")
)

// flushObs publishes the engine's locally accumulated join counters.
func (e *Engine) flushObs() {
	if e.pendProbes != 0 {
		obsIndexProbes.Add(e.pendProbes)
		e.pendProbes = 0
	}
	if e.pendSteps != 0 {
		obsJoinSteps.Add(e.pendSteps)
		e.pendSteps = 0
	}
}
