// Differential oracle for the compiled slot runtime: the interpreted
// engine (which predates compilation and remains the fallback) is the
// reference semantics; the compiled engine must agree with it on every
// query surface — LHS match sets, RHS satisfaction, violation sets,
// and §4.2 seeded violation queries — over randomized schemas,
// mappings, duplicate-heavy data, and shared labeled nulls. CI runs
// this under -race -shuffle=on, and the fuzz lane extends the same
// property beyond the fixed seeds.
package query

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// diffWorld is one randomized instance: a store, its mappings, and the
// raw tuples (kept for seeding the §4.2 queries).
type diffWorld struct {
	st     *storage.Store
	tgds   []*tgd.TGD
	tuples []model.Tuple
}

var diffVars = []string{"x", "y", "z", "w", "u"}

// genWorld builds a random world. Constants come from a small pool so
// joins hit and duplicates are common; a few shared labeled nulls run
// through the data to exercise null equality in joins and keys.
func genWorld(r *rand.Rand) *diffWorld {
	s := model.NewSchema()
	nRels := 2 + r.Intn(3)
	arity := make([]int, nRels)
	names := make([]string, nRels)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		arity[i] = 1 + r.Intn(3)
		fields := make([]string, arity[i])
		for j := range fields {
			fields[j] = fmt.Sprintf("f%d", j)
		}
		s.MustAddRelation(names[i], fields...)
	}

	randVal := func() model.Value {
		if r.Intn(8) == 0 {
			return model.Null(int64(1 + r.Intn(3))) // shared nulls
		}
		return model.Const(fmt.Sprintf("c%d", r.Intn(6)))
	}
	st := storage.NewStore(s)
	var tuples []model.Tuple
	for i, n := 0, 8+r.Intn(25); i < n; i++ {
		ri := r.Intn(nRels)
		vals := make([]model.Value, arity[ri])
		for j := range vals {
			vals[j] = randVal()
		}
		tp := model.NewTuple(names[ri], vals...)
		st.Load(tp)
		tuples = append(tuples, tp)
	}

	randTerm := func() tgd.Term {
		if r.Intn(5) == 0 {
			return tgd.C(fmt.Sprintf("c%d", r.Intn(6)))
		}
		return tgd.V(diffVars[r.Intn(len(diffVars))])
	}
	randAtoms := func(n int) []tgd.Atom {
		out := make([]tgd.Atom, n)
		for i := range out {
			ri := r.Intn(nRels)
			terms := make([]tgd.Term, arity[ri])
			for j := range terms {
				terms[j] = randTerm()
			}
			out[i] = tgd.NewAtom(names[ri], terms...)
		}
		return out
	}
	w := &diffWorld{st: st, tuples: tuples}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		w.tgds = append(w.tgds,
			tgd.New(fmt.Sprintf("m%d", i), randAtoms(1+r.Intn(3)), randAtoms(1+r.Intn(2))))
	}
	return w
}

// canonMatches renders a match set order-independently.
func canonMatches(ms []Match) []string {
	out := make([]string, len(ms))
	for i := range ms {
		out[i] = fmt.Sprintf("%s @ %v", ms[i].Binding.String(), ms[i].Witness)
	}
	sort.Strings(out)
	return out
}

// canonViols renders a violation set order-independently, by the same
// Key the chase dedups with (mapping, witness IDs, binding).
func canonViols(vs []Violation) []string {
	out := make([]string, len(vs))
	for i := range vs {
		out[i] = vs[i].Key()
	}
	sort.Strings(out)
	return out
}

func diffFatal(t *testing.T, what string, a, b []string) {
	t.Helper()
	t.Fatalf("%s diverged:\ncompiled:    %s\ninterpreted: %s",
		what, strings.Join(a, " ; "), strings.Join(b, " ; "))
}

// checkWorld runs every query surface through both engines and demands
// identical results. The engines are parameters so the parallel
// variant can hand each goroutine its own pair.
func checkWorld(t *testing.T, r *rand.Rand, w *diffWorld, ce, ie *Engine) {
	t.Helper()
	randSeed := func(m *tgd.TGD) Binding {
		b := Binding{}
		vars := append(m.FrontierVars(), m.ExistentialVars()...)
		for _, v := range vars {
			if r.Intn(3) == 0 {
				b[v] = model.Const(fmt.Sprintf("c%d", r.Intn(6)))
			}
		}
		if r.Intn(6) == 0 {
			b["foreign"] = model.Const("c0") // forces the fallback path
		}
		return b
	}
	for _, m := range w.tgds {
		if cv, iv := canonViols(ce.Violations(m, Binding{})), canonViols(ie.Violations(m, Binding{})); !equalStrs(cv, iv) {
			diffFatal(t, "Violations("+m.Name+")", cv, iv)
		}
		for round := 0; round < 3; round++ {
			seed := randSeed(m)
			if cm, im := canonMatches(ce.LHSMatches(m, seed)), canonMatches(ie.LHSMatches(m, seed)); !equalStrs(cm, im) {
				diffFatal(t, fmt.Sprintf("LHSMatches(%s, %v)", m.Name, seed), cm, im)
			}
			if cs, is := ce.RHSSatisfied(m, seed), ie.RHSSatisfied(m, seed); cs != is {
				t.Fatalf("RHSSatisfied(%s, %v): compiled %v, interpreted %v", m.Name, seed, cs, is)
			}
			if cv, iv := canonViols(ce.Violations(m, seed)), canonViols(ie.Violations(m, seed)); !equalStrs(cv, iv) {
				diffFatal(t, fmt.Sprintf("Violations(%s, %v)", m.Name, seed), cv, iv)
			}
		}
		for _, side := range []Side{SeedLHS, SeedRHS, SeedBoth} {
			for round := 0; round < 4; round++ {
				tp := w.tuples[r.Intn(len(w.tuples))]
				cv := canonViols(ce.ViolationsSeeded(m, tp.Rel, tp.Vals, side))
				iv := canonViols(ie.ViolationsSeeded(m, tp.Rel, tp.Vals, side))
				if !equalStrs(cv, iv) {
					diffFatal(t, fmt.Sprintf("ViolationsSeeded(%s, %s, side %d)", m.Name, tp.Rel, side), cv, iv)
				}
			}
		}
		// Signatures must agree too: both engines assign the same
		// canonical identity to corresponding violations.
		cv, iv := ce.Violations(m, Binding{}), ie.Violations(m, Binding{})
		cs := make([]string, len(cv))
		is := make([]string, len(iv))
		for i := range cv {
			cs[i] = ce.WitnessSig(&cv[i])
		}
		for i := range iv {
			is[i] = ie.WitnessSig(&iv[i])
		}
		sort.Strings(cs)
		sort.Strings(is)
		if !equalStrs(cs, is) {
			diffFatal(t, "WitnessSig("+m.Name+")", cs, is)
		}
	}
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompiledVsInterpreted is the differential oracle: 100 seeded
// rounds of randomized worlds, each checked on both snapshot flavors.
func TestCompiledVsInterpreted(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			w := genWorld(r)
			snap := w.st.Snap(1)
			checkWorld(t, r, w, NewEngine(snap), NewInterpretedEngine(snap))
			ep := w.st.EpochSnap()
			checkWorld(t, r, w, NewEngine(ep), NewInterpretedEngine(ep))
		})
	}
}

// TestCompiledVsInterpretedParallel runs the oracle from concurrent
// workers sharing one world: all goroutines race on the process-wide
// intern table and the per-TGD plan and join-order caches, which is
// exactly how chase workers share plans in production. Run under
// -race in CI.
func TestCompiledVsInterpretedParallel(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	w := genWorld(r)
	snap := w.st.Snap(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(gseed int64) {
			defer wg.Done()
			gr := rand.New(rand.NewSource(gseed))
			checkWorld(t, gr, w, NewEngine(snap), NewInterpretedEngine(snap))
		}(int64(g))
	}
	wg.Wait()
}

// FuzzCompiledVsInterpreted extends the oracle beyond the fixed seeds:
// the fuzzer picks the world seed.
func FuzzCompiledVsInterpreted(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		w := genWorld(r)
		snap := w.st.Snap(1)
		checkWorld(t, r, w, NewEngine(snap), NewInterpretedEngine(snap))
	})
}
