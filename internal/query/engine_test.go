package query

import (
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

func c(s string) model.Value { return model.Const(s) }
func n(id int64) model.Value { return model.Null(id) }
func tup(rel string, vals ...model.Value) model.Tuple {
	return model.NewTuple(rel, vals...)
}

// fig2 builds the Figure 2 repository: schema, mappings σ1–σ4, and the
// example data (satisfying all mappings).
func fig2(t *testing.T) (*storage.Store, *tgd.Set) {
	t.Helper()
	s := model.NewSchema()
	s.MustAddRelation("C", "city")
	s.MustAddRelation("S", "code", "location", "city_served")
	s.MustAddRelation("A", "location", "name")
	s.MustAddRelation("T", "attraction", "company", "tour_start")
	s.MustAddRelation("R", "company", "attraction", "review")
	s.MustAddRelation("V", "city", "convention")
	s.MustAddRelation("E", "convention", "attraction")

	sigma1 := tgd.New("sigma1",
		[]tgd.Atom{tgd.NewAtom("C", tgd.V("c"))},
		[]tgd.Atom{tgd.NewAtom("S", tgd.V("a"), tgd.V("l"), tgd.V("c"))})
	sigma2 := tgd.New("sigma2",
		[]tgd.Atom{tgd.NewAtom("S", tgd.V("a"), tgd.V("l"), tgd.V("c"))},
		[]tgd.Atom{tgd.NewAtom("C", tgd.V("l")), tgd.NewAtom("C", tgd.V("c"))})
	sigma3 := tgd.New("sigma3",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("l"), tgd.V("n")),
			tgd.NewAtom("T", tgd.V("n"), tgd.V("co"), tgd.V("st"))},
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("co"), tgd.V("n"), tgd.V("r"))})
	sigma4 := tgd.New("sigma4",
		[]tgd.Atom{tgd.NewAtom("V", tgd.V("ci"), tgd.V("x")),
			tgd.NewAtom("T", tgd.V("n"), tgd.V("co"), tgd.V("ci"))},
		[]tgd.Atom{tgd.NewAtom("E", tgd.V("x"), tgd.V("n"))})
	set := tgd.MustNewSet(sigma1, sigma2, sigma3, sigma4)
	if err := set.Validate(s); err != nil {
		t.Fatal(err)
	}

	st := storage.NewStore(s)
	load := func(tp model.Tuple) {
		t.Helper()
		if _, err := st.Load(tp); err != nil {
			t.Fatal(err)
		}
	}
	load(tup("C", c("Ithaca")))
	load(tup("C", c("Syracuse")))
	load(tup("S", c("SYR"), c("Syracuse"), c("Syracuse")))
	load(tup("S", c("SYR"), c("Syracuse"), c("Ithaca")))
	load(tup("A", c("Geneva"), c("Geneva Winery")))
	load(tup("A", c("Niagara Falls"), c("Niagara Falls")))
	load(tup("T", c("Geneva Winery"), c("XYZ"), c("Syracuse")))
	load(tup("T", c("Niagara Falls"), n(1), c("Toronto")))
	load(tup("R", c("XYZ"), c("Geneva Winery"), c("Great!")))
	load(tup("R", n(1), c("Niagara Falls"), n(2)))
	load(tup("V", c("Syracuse"), c("Science Conf")))
	load(tup("E", c("Science Conf"), c("Geneva Winery")))
	return st, set
}

func engineAt(st *storage.Store, reader int) *Engine {
	return NewEngine(st.Snap(reader))
}

func TestFigure2InitiallySatisfied(t *testing.T) {
	st, set := fig2(t)
	e := engineAt(st, 0)
	if vs := e.AllViolations(set); len(vs) != 0 {
		t.Fatalf("initial database must satisfy all mappings, got %v", vs)
	}
	if !e.Satisfied(set) {
		t.Fatal("Satisfied = false on a satisfying database")
	}
}

func TestLHSMatches(t *testing.T) {
	st, set := fig2(t)
	e := engineAt(st, 0)
	sigma3, _ := set.ByName("sigma3")
	ms := e.LHSMatches(sigma3, nil)
	// Two A⋈T pairs exist: Geneva Winery/XYZ and Niagara Falls/x1.
	if len(ms) != 2 {
		t.Fatalf("LHSMatches = %d, want 2: %v", len(ms), ms)
	}
	for _, m := range ms {
		if len(m.Witness) != 2 {
			t.Fatalf("witness size = %d", len(m.Witness))
		}
		if _, ok := m.Binding["n"]; !ok {
			t.Fatalf("binding incomplete: %v", m.Binding)
		}
	}
}

func TestLHSMatchesSeeded(t *testing.T) {
	st, set := fig2(t)
	e := engineAt(st, 0)
	sigma3, _ := set.ByName("sigma3")
	ms := e.LHSMatches(sigma3, Binding{"co": c("XYZ")})
	if len(ms) != 1 {
		t.Fatalf("seeded matches = %v", ms)
	}
	if ms[0].Binding["n"] != c("Geneva Winery") {
		t.Fatalf("binding = %v", ms[0].Binding)
	}
}

func TestLHSMatchesNullsAreValues(t *testing.T) {
	st, set := fig2(t)
	e := engineAt(st, 0)
	sigma3, _ := set.ByName("sigma3")
	// Labeled null x1 is a regular value: seeding co = x1 matches the
	// Niagara Falls row only.
	ms := e.LHSMatches(sigma3, Binding{"co": n(1)})
	if len(ms) != 1 || ms[0].Binding["n"] != c("Niagara Falls") {
		t.Fatalf("null-seeded matches = %v", ms)
	}
	// A constant "x1" does not match the null x1.
	ms = e.LHSMatches(sigma3, Binding{"co": c("x1")})
	if len(ms) != 0 {
		t.Fatalf("constant must not match null: %v", ms)
	}
}

func TestRHSSatisfied(t *testing.T) {
	st, set := fig2(t)
	e := engineAt(st, 0)
	sigma1, _ := set.ByName("sigma1")
	if !e.RHSSatisfied(sigma1, Binding{"c": c("Ithaca")}) {
		t.Fatal("Ithaca has a suggested airport")
	}
	if e.RHSSatisfied(sigma1, Binding{"c": c("Boston")}) {
		t.Fatal("Boston must have no airport")
	}
}

func TestViolationInsertExample11(t *testing.T) {
	// Example 1.1: inserting T(Niagara Falls, ABC Tours, x?) violates
	// sigma3 — R has no (ABC Tours, Niagara Falls) review.
	st, set := fig2(t)
	_, w, ins, err := st.Insert(1, tup("T", c("Niagara Falls"), c("ABC Tours"), n(5)))
	if err != nil || !ins {
		t.Fatalf("insert: %v %v", ins, err)
	}
	e := engineAt(st, 1)
	sigma3, _ := set.ByName("sigma3")
	vs := e.ViolationsSeeded(sigma3, w.Rel, w.After, SeedLHS)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	v := vs[0]
	if v.Binding["co"] != c("ABC Tours") || v.Binding["n"] != c("Niagara Falls") {
		t.Fatalf("binding = %v", v.Binding)
	}
	// Reader 0 must not see the violation.
	if vs := engineAt(st, 0).ViolationsSeeded(sigma3, w.Rel, w.After, SeedLHS); len(vs) != 0 {
		t.Fatalf("reader 0 sees %v", vs)
	}
}

func TestViolationDeleteExample23(t *testing.T) {
	// Example 2.3: deleting R(XYZ, Geneva Winery, Great!) violates
	// sigma3 with witness {A(Geneva, Geneva Winery), T(Geneva Winery, XYZ, Syracuse)}.
	st, set := fig2(t)
	recs, err := st.DeleteContent(1, tup("R", c("XYZ"), c("Geneva Winery"), c("Great!")))
	if err != nil || len(recs) != 1 {
		t.Fatalf("delete: %v %v", recs, err)
	}
	e := engineAt(st, 1)
	sigma3, _ := set.ByName("sigma3")
	vs := e.ViolationsSeeded(sigma3, recs[0].Rel, recs[0].Before, SeedRHS)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if len(vs[0].Witness) != 2 {
		t.Fatalf("witness = %v", vs[0].Witness)
	}
	snap := st.Snap(1)
	w0, _ := snap.GetTuple(vs[0].Witness[0])
	w1, _ := snap.GetTuple(vs[0].Witness[1])
	if w0.Rel != "A" || w1.Rel != "T" {
		t.Fatalf("witness tuples = %s, %s", w0, w1)
	}
}

func TestViolationsSeededDedup(t *testing.T) {
	// sigma2 has C on the RHS twice; a C write must not produce
	// duplicate violations.
	st, set := fig2(t)
	sigma2, _ := set.ByName("sigma2")
	// Delete C(Syracuse): S(SYR, Syracuse, *) loses both its RHS
	// supports (l=Syracuse and c=Syracuse for one row).
	recs, _ := st.DeleteContent(1, tup("C", c("Syracuse")))
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	vs := engineAt(st, 1).ViolationsSeeded(sigma2, recs[0].Rel, recs[0].Before, SeedRHS)
	keys := make(map[string]bool)
	for i := range vs {
		k := vs[i].Key()
		if keys[k] {
			t.Fatalf("duplicate violation %s", k)
		}
		keys[k] = true
	}
	// Both S rows lose their support (l = Syracuse appears in both).
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestSelfJoinMatching(t *testing.T) {
	// Mapping with a repeated variable: S(a, x, x) requires
	// location == city_served.
	s := model.NewSchema()
	s.MustAddRelation("S", "code", "location", "city")
	s.MustAddRelation("C", "city")
	m := tgd.New("m",
		[]tgd.Atom{tgd.NewAtom("S", tgd.V("a"), tgd.V("x"), tgd.V("x"))},
		[]tgd.Atom{tgd.NewAtom("C", tgd.V("x"))})
	st := storage.NewStore(s)
	st.Load(tup("S", c("SYR"), c("Syracuse"), c("Syracuse")))
	st.Load(tup("S", c("JFK"), c("NYC"), c("Ithaca")))
	ms := engineAt(st, 0).LHSMatches(m, nil)
	if len(ms) != 1 || ms[0].Binding["x"] != c("Syracuse") {
		t.Fatalf("matches = %v", ms)
	}
}

func TestConstantInAtom(t *testing.T) {
	s := model.NewSchema()
	s.MustAddRelation("T", "attraction", "company", "start")
	s.MustAddRelation("C", "city")
	m := tgd.New("m",
		[]tgd.Atom{tgd.NewAtom("T", tgd.V("n"), tgd.C("XYZ"), tgd.V("s"))},
		[]tgd.Atom{tgd.NewAtom("C", tgd.V("s"))})
	st := storage.NewStore(s)
	st.Load(tup("T", c("Winery"), c("XYZ"), c("Syracuse")))
	st.Load(tup("T", c("Falls"), c("ABC"), c("Toronto")))
	vs := engineAt(st, 0).Violations(m, nil)
	if len(vs) != 1 || vs[0].Binding["s"] != c("Syracuse") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestInstantiateRHS(t *testing.T) {
	st, set := fig2(t)
	sigma1, _ := set.ByName("sigma1")
	var nf model.NullFactory
	nf.SetFloor(100)
	tuples, fresh := InstantiateRHS(sigma1, Binding{"c": c("NYC")}, nf.Fresh)
	if len(tuples) != 1 {
		t.Fatalf("tuples = %v", tuples)
	}
	got := tuples[0]
	if got.Rel != "S" || got.Vals[2] != c("NYC") {
		t.Fatalf("instantiated = %s", got)
	}
	if !got.Vals[0].IsNull() || !got.Vals[1].IsNull() || got.Vals[0] == got.Vals[1] {
		t.Fatalf("existentials must be distinct fresh nulls: %s", got)
	}
	if len(fresh) != 2 || !fresh[got.Vals[0]] || !fresh[got.Vals[1]] {
		t.Fatalf("fresh set = %v", fresh)
	}
	_ = st
}

func TestInstantiateRHSSharedExistentials(t *testing.T) {
	// Genealogy tgd: Person(x) -> exists y: Father(x,y) & Person(y).
	// The two RHS atoms must share one fresh null for y.
	s := model.NewSchema()
	s.MustAddRelation("Person", "name")
	s.MustAddRelation("Father", "child", "father")
	gen := tgd.New("gen",
		[]tgd.Atom{tgd.NewAtom("Person", tgd.V("x"))},
		[]tgd.Atom{tgd.NewAtom("Father", tgd.V("x"), tgd.V("y")),
			tgd.NewAtom("Person", tgd.V("y"))})
	var nf model.NullFactory
	tuples, _ := InstantiateRHS(gen, Binding{"x": c("John")}, nf.Fresh)
	if len(tuples) != 2 {
		t.Fatalf("tuples = %v", tuples)
	}
	if tuples[0].Vals[1] != tuples[1].Vals[0] {
		t.Fatalf("shared existential broken: %s vs %s", tuples[0], tuples[1])
	}
	if tuples[0].Vals[0] != c("John") {
		t.Fatalf("frontier var not substituted: %s", tuples[0])
	}
}

func TestBindingHelpers(t *testing.T) {
	b := Binding{"a": c("1"), "b": n(2)}
	r := b.Restrict([]string{"a", "zz"})
	if len(r) != 1 || r["a"] != c("1") {
		t.Fatalf("Restrict = %v", r)
	}
	if got := b.String(); got != "{a->1, b->x2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestViolationKeyStable(t *testing.T) {
	st, set := fig2(t)
	st.DeleteContent(1, tup("R", c("XYZ"), c("Geneva Winery"), c("Great!")))
	sigma3, _ := set.ByName("sigma3")
	a := engineAt(st, 1).Violations(sigma3, nil)
	b := engineAt(st, 1).Violations(sigma3, nil)
	if len(a) != 1 || len(b) != 1 || a[0].Key() != b[0].Key() {
		t.Fatalf("keys unstable: %v vs %v", a, b)
	}
	if a[0].String() == "" {
		t.Fatal("String empty")
	}
}
