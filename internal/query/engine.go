// Package query evaluates the conjunctive queries that Youtopia's
// update exchange needs: LHS/RHS matching of mappings by homomorphism,
// violation detection (Definition 2.1), the seeded violation queries of
// §4.2 ("SELECT * FROM (LHS query) WHERE NOT EXISTS (SELECT * FROM
// (RHS query))" with bindings taken from a newly written tuple), and
// the correction queries used by the forward chase.
//
// Matching follows the homomorphism semantics of Fagin et al. [11]:
// labeled nulls in the database are ordinary domain values — a query
// constant matches only itself, while a query variable binds to any
// value, constant or null.
package query

import (
	"sort"
	"strconv"
	"strings"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// Binding assigns values to mapping variables.
type Binding map[string]model.Value

// cloneSized copies a binding into a map sized for the given final
// variable count, so growth reallocations never happen when the caller
// knows how many variables the mapping can bind.
func (b Binding) cloneSized(size int) Binding {
	if size < len(b) {
		size = len(b)
	}
	out := make(Binding, size)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// clone copies a binding with headroom for a couple of extensions.
func (b Binding) clone() Binding {
	return b.cloneSized(len(b) + 2)
}

// Restrict returns the binding restricted to the given variables.
func (b Binding) Restrict(vars []string) Binding {
	out := make(Binding, len(vars))
	for _, v := range vars {
		if val, ok := b[v]; ok {
			out[v] = val
		}
	}
	return out
}

// String renders the binding deterministically, e.g. {c->Ithaca, n->x3}.
// With no mapping in hand it must sort the variable names; everything
// on a hot path (Violation.Key, Violation.String, the seeded-query
// dedup) renders through the compiled plan's canonical slot order
// instead and never sorts — keep this for plan-less diagnostics only.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "->" + b[k].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// appendValue renders a value exactly as model.Value.String does,
// into dst.
func appendValue(dst []byte, v model.Value) []byte {
	if v.IsNull() {
		dst = append(dst, 'x')
		return strconv.AppendInt(dst, v.NullID(), 10)
	}
	return append(dst, v.ConstValue()...)
}

// appendBindingOrdered renders a binding map in the plan's canonical
// slot order, byte-identical to appendBindingSlots over the register
// file. Variables outside the slot table — foreign seed variables a
// caller carried through the interpreted path — follow in sorted
// order, so keys stay total without ever sorting in the common case.
func appendBindingOrdered(dst []byte, p *Plan, b Binding) []byte {
	dst = append(dst, '{')
	first := true
	emit := func(name string, val model.Value) {
		if !first {
			dst = append(dst, ", "...)
		}
		first = false
		dst = append(dst, name...)
		dst = append(dst, "->"...)
		dst = appendValue(dst, val)
	}
	n := 0
	for _, name := range p.slots {
		if val, ok := b[name]; ok {
			emit(name, val)
			n++
		}
	}
	if n < len(b) {
		extra := make([]string, 0, len(b)-n)
		for name := range b {
			if _, inPlan := p.slotOf[name]; !inPlan {
				extra = append(extra, name)
			}
		}
		sort.Strings(extra)
		for _, name := range extra {
			emit(name, b[name])
		}
	}
	return append(dst, '}')
}

// Match is one homomorphism of a mapping's LHS into the database: the
// variable assignment plus the witness tuples, aligned positionally
// with the mapping's LHS atoms (Witness[i] matched LHS[i]).
type Match struct {
	Binding Binding
	Witness []storage.TupleID
}

// Violation is a mapping violation (Definition 2.1): an LHS match with
// no corresponding RHS match. Witness is aligned with the mapping's
// LHS atoms.
type Violation struct {
	TGD     *tgd.TGD
	Binding Binding
	Witness []storage.TupleID
}

// Key identifies the violation within a run: mapping name, witness
// tuple IDs in atom order, and the full binding rendered in the
// compiled plan's canonical slot order (no per-call sorting). Keys are
// comparable only within one store instance (tuple IDs are
// store-scoped).
func (v *Violation) Key() string {
	return string(v.appendKey(nil))
}

// appendKey renders the key into dst; the seeded-query dedup calls it
// with the engine's reusable buffer so steady-state evaluations never
// allocate for keys.
func (v *Violation) appendKey(dst []byte) []byte {
	p := PlanFor(v.TGD)
	return appendKeyParts(dst, p, v.Witness, func(dst []byte) []byte {
		return appendBindingOrdered(dst, p, v.Binding)
	})
}

// AppendKey renders the key into a caller-owned buffer, allocation-
// free once the buffer has capacity; for callers (benches, the chase's
// own dedup) that re-render keys in a loop.
func (v *Violation) AppendKey(dst []byte) []byte { return v.appendKey(dst) }

// appendKeyParts is the shared key layout: name | witness IDs | binding.
func appendKeyParts(dst []byte, p *Plan, witness []storage.TupleID, binding func([]byte) []byte) []byte {
	dst = append(dst, p.t.Name...)
	dst = append(dst, '|')
	for _, id := range witness {
		dst = strconv.AppendUint(dst, uint64(id), 10)
		dst = append(dst, ',')
	}
	dst = append(dst, '|')
	return binding(dst)
}

// String renders the violation for diagnostics, binding in canonical
// slot order.
func (v *Violation) String() string {
	out := []byte("violation of " + v.TGD.Name + " at ")
	return string(appendBindingOrdered(out, PlanFor(v.TGD), v.Binding))
}

// WitnessSig renders a violation's identity canonically: the mapping
// name plus the witness tuples' current contents in atom order, with
// labeled nulls numbered by first occurrence across the whole
// sequence. Unlike Key it contains no tuple IDs, so two executions in
// equivalent states (equal up to null renaming and physical tuple
// identity) assign equal signatures to corresponding violations. The
// chase orders its violation processing by signature, which is what
// keeps the frontier — the order repairs are planned and decision
// contexts reach users — identical across serial, parallel, and
// sharded executions: tuple IDs are minted in schedule order and would
// otherwise leak the interleaving into repair order and, through it,
// into the final instance.
func (e *Engine) WitnessSig(v *Violation) string {
	e.sigBuf = e.appendWitnessSig(e.sigBuf[:0], v)
	return string(e.sigBuf)
}

// AppendWitnessSig renders the signature into a caller-owned buffer,
// allocation-free once buffer and renaming scratch are warm.
func (e *Engine) AppendWitnessSig(dst []byte, v *Violation) []byte {
	return e.appendWitnessSig(dst, v)
}

// appendWitnessSig renders the signature into dst with the engine's
// pooled null-renaming scratch: building a signature allocates nothing
// beyond the final string the caller keeps.
func (e *Engine) appendWitnessSig(dst []byte, v *Violation) []byte {
	dst = append(dst, v.TGD.Name...)
	ren := e.renBuf[:0]
	for _, id := range v.Witness {
		dst = append(dst, '|')
		t, ok := e.snap.GetTuple(id)
		if !ok {
			dst = append(dst, '?')
			continue
		}
		dst = append(dst, t.Rel...)
		for _, val := range t.Vals {
			dst = append(dst, 0x1f)
			if val.IsNull() {
				n := 0
				for i := range ren {
					if ren[i] == val {
						n = i + 1
						break
					}
				}
				if n == 0 {
					ren = append(ren, val)
					n = len(ren)
				}
				dst = append(dst, '?')
				dst = strconv.AppendInt(dst, int64(n), 10)
			} else {
				dst = append(dst, 'c')
				dst = append(dst, val.ConstValue()...)
			}
		}
	}
	e.renBuf = ren
	return dst
}

// Engine evaluates queries against one snapshot. It is not safe for
// concurrent use: the join scratch (pooled working bindings reused
// across evaluations — the match loop is the hottest code path in the
// system, and per-join map churn shows up in every chase step) is
// owned by one goroutine at a time, which is how every caller already
// uses an engine.
type Engine struct {
	snap *storage.Snapshot

	// forceInterpreted routes every evaluation through the interpreted
	// join path even when a compiled plan fits; the differential oracle
	// uses it to pit the two runtimes against each other.
	forceInterpreted bool

	// bindingPool holds cleared scratch maps; joins pop one for their
	// working binding and push it back when the enumeration finishes.
	// Nested joins (Satisfied's RHS probe inside an LHS enumeration)
	// simply pop a second one. framePool does the same for the
	// per-join bookkeeping slices, runPool for compiled slot runs.
	bindingPool []Binding
	framePool   []*joinFrame
	runPool     []*slotRun

	// Reusable buffers for violation keys, witness signatures and the
	// signatures' null-renaming scratch; seen is the seeded-query dedup
	// set, allocated on first violation and cleared per query.
	keyBuf []byte
	sigBuf []byte
	renBuf []model.Value
	seen   map[string]bool

	// vout is the compiled violation-collection target. Collecting
	// through an engine field instead of a stack variable keeps the
	// no-violation steady state allocation-free: a local slice whose
	// address reaches the run would be heap-moved even when it stays
	// nil. Ownership of the backing array transfers to the caller at
	// the end of each evaluation (the field is reset to nil).
	vout []Violation

	// Locally accumulated join counters, flushed to the obs registry
	// once per top-level evaluation (flushObs).
	pendProbes int64
	pendSteps  int64
}

// joinFrame is the per-join bookkeeping: the witness under
// construction, the processed-atom set, and the per-level undo lists.
type joinFrame struct {
	witness []storage.TupleID
	done    []bool
	undo    [][]string
}

// getFrame returns a join frame with capacity for n atoms, pooled.
func (e *Engine) getFrame(n int) *joinFrame {
	var f *joinFrame
	if k := len(e.framePool); k > 0 {
		f = e.framePool[k-1]
		e.framePool = e.framePool[:k-1]
	} else {
		f = &joinFrame{}
	}
	if cap(f.witness) < n {
		f.witness = make([]storage.TupleID, n)
		f.done = make([]bool, n)
		f.undo = make([][]string, n)
	}
	f.witness = f.witness[:n]
	f.done = f.done[:n]
	for i := range f.done {
		f.done[i] = false
	}
	f.undo = f.undo[:n]
	return f
}

func (e *Engine) putFrame(f *joinFrame) { e.framePool = append(e.framePool, f) }

// getScratch returns a scratch binding pre-filled with b, drawing from
// the pool when possible; sizeHint sizes a fresh allocation for the
// join's full variable count.
func (e *Engine) getScratch(b Binding, sizeHint int) Binding {
	n := len(e.bindingPool)
	if n == 0 {
		return b.cloneSized(sizeHint)
	}
	out := e.bindingPool[n-1]
	e.bindingPool = e.bindingPool[:n-1]
	for k, v := range b {
		out[k] = v
	}
	return out
}

// putScratch clears a scratch binding and returns it to the pool.
func (e *Engine) putScratch(b Binding) {
	clear(b)
	e.bindingPool = append(e.bindingPool, b)
}

// NewEngine returns an engine reading through the given snapshot.
func NewEngine(snap *storage.Snapshot) *Engine {
	return &Engine{snap: snap}
}

// NewInterpretedEngine returns an engine that bypasses compiled plans
// and evaluates every query through the interpreted join path — the
// reference implementation the differential oracle compares the slot
// runtime against.
func NewInterpretedEngine(snap *storage.Snapshot) *Engine {
	return &Engine{snap: snap, forceInterpreted: true}
}

// Snapshot returns the snapshot the engine reads through.
func (e *Engine) Snapshot() *storage.Snapshot { return e.snap }

// unifyValsAtom extends binding b by matching concrete values against
// an atom's terms. It reports false when a constant clashes or a
// variable is already bound to a different value.
func unifyValsAtom(vals []model.Value, a tgd.Atom, b Binding) (Binding, bool) {
	if len(vals) != len(a.Terms) {
		return nil, false
	}
	out := b
	copied := false
	for i, term := range a.Terms {
		v := vals[i]
		if !term.IsVar {
			if !v.IsConst() || v.ConstValue() != term.Const {
				return nil, false
			}
			continue
		}
		if bound, ok := out[term.Var]; ok {
			if bound != v {
				return nil, false
			}
			continue
		}
		if !copied {
			out = out.clone()
			copied = true
		}
		out[term.Var] = v
	}
	return out, true
}

// boundTermCount counts how many argument positions of the atom are
// determined under b (constants or bound variables).
func boundTermCount(a tgd.Atom, b Binding) int {
	n := 0
	for _, term := range a.Terms {
		if !term.IsVar {
			n++
			continue
		}
		if _, ok := b[term.Var]; ok {
			n++
		}
	}
	return n
}

// candidates returns tuple IDs that can possibly match the atom under
// b, using the most selective determined position, or every visible
// tuple of the relation when nothing is determined.
func (e *Engine) candidates(a tgd.Atom, b Binding) []storage.TupleID {
	bestCol := -1
	var bestIDs []storage.TupleID
	for i, term := range a.Terms {
		var val model.Value
		switch {
		case !term.IsVar:
			val = model.Const(term.Const)
		default:
			bound, ok := b[term.Var]
			if !ok {
				continue
			}
			val = bound
		}
		ids := e.snap.CandidatesByValue(a.Rel, i, val)
		e.pendProbes++
		if bestCol == -1 || len(ids) < len(bestIDs) {
			bestCol, bestIDs = i, ids
		}
		if len(bestIDs) == 0 {
			return nil
		}
	}
	if bestCol >= 0 {
		return bestIDs
	}
	// Unconstrained: every tuple of the relation is a candidate; the
	// caller's Get filters visibility.
	return e.snap.RelIDs(a.Rel)
}

// bindInPlace extends b by matching vals against the atom's terms,
// mutating b and recording the newly bound variables in *added (for
// undo). It reports false — with b already restored — when a constant
// clashes or a variable is bound to a different value.
func bindInPlace(vals []model.Value, a tgd.Atom, b Binding, added *[]string) bool {
	*added = (*added)[:0]
	for i, term := range a.Terms {
		v := vals[i]
		if !term.IsVar {
			if !v.IsConst() || v.ConstValue() != term.Const {
				undoBinds(b, *added)
				return false
			}
			continue
		}
		if bound, ok := b[term.Var]; ok {
			if bound != v {
				undoBinds(b, *added)
				return false
			}
			continue
		}
		b[term.Var] = v
		*added = append(*added, term.Var)
	}
	return true
}

func undoBinds(b Binding, added []string) {
	for _, v := range added {
		delete(b, v)
	}
}

// joinAtoms enumerates homomorphisms of the atom conjunction into the
// snapshot, extending seed binding b. The witness records, for each
// original atom position, the tuple matched to it. fn receives a
// private copy of the binding; returning false stops the enumeration.
// joinAtoms reports whether enumeration ran to completion.
//
// Bindings are extended in place with undo lists rather than cloned
// per candidate, the working binding is drawn from the engine's pool,
// and per-result copies are sized to their exact final variable count:
// the join is the hottest code path of the whole system (every
// violation query runs through it), so map churn here is workload-wide
// allocation churn.
func (e *Engine) joinAtoms(atoms []tgd.Atom, b Binding, fn func(Binding, []storage.TupleID) bool) bool {
	n := len(atoms)
	frame := e.getFrame(n)
	defer e.putFrame(frame)
	witness, done := frame.witness, frame.done
	// Upper bound on the join's final variable count: every variable
	// term of every atom could be distinct and unbound.
	varCap := len(b)
	for i := range atoms {
		for _, term := range atoms[i].Terms {
			if term.IsVar {
				varCap++
			}
		}
	}
	scratch := e.getScratch(b, varCap)
	defer e.putScratch(scratch)
	undo := frame.undo
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			w := make([]storage.TupleID, n)
			copy(w, witness)
			return fn(scratch.cloneSized(len(scratch)), w)
		}
		// Greedy: evaluate the most-bound unprocessed atom next.
		best := -1
		bestBound := -1
		for i, a := range atoms {
			if done[i] {
				continue
			}
			if bc := boundTermCount(a, scratch); bc > bestBound {
				best, bestBound = i, bc
			}
		}
		a := atoms[best]
		done[best] = true
		defer func() { done[best] = false }()
		level := &undo[n-remaining]
		cands := e.candidates(a, scratch)
		e.pendSteps += int64(len(cands))
		for _, id := range cands {
			vals, ok := e.snap.Get(id)
			if !ok {
				continue
			}
			if !bindInPlace(vals, a, scratch, level) {
				continue
			}
			witness[best] = id
			cont := rec(remaining - 1)
			undoBinds(scratch, *level)
			if !cont {
				return false
			}
		}
		return true
	}
	return rec(n)
}

// LHSMatches returns every homomorphism of the mapping's LHS into the
// snapshot that extends the seed binding, in deterministic order.
func (e *Engine) LHSMatches(t *tgd.TGD, seed Binding) []Match {
	defer e.flushObs()
	var out []Match
	if p := PlanFor(t); e.useCompiled(p) {
		r := e.getRun(p)
		if mask, ok := p.seedMask(seed, r.regs); ok {
			r.side(false, mask)
			r.fn = srCollectMatch
			r.mout = &out
			r.rec(0, mask)
			e.putRun(r)
			return out
		}
		e.putRun(r)
	}
	if seed == nil {
		seed = Binding{}
	}
	e.joinAtoms(t.LHS, seed, func(b Binding, w []storage.TupleID) bool {
		out = append(out, Match{Binding: b, Witness: w})
		return true
	})
	return out
}

// useCompiled reports whether evaluation should run on the slot
// runtime.
func (e *Engine) useCompiled(p *Plan) bool {
	return p.ok && !e.forceInterpreted
}

// RHSSatisfied reports whether the mapping's RHS has a complete match
// extending the binding (the existentially quantified variables bind
// freely).
func (e *Engine) RHSSatisfied(t *tgd.TGD, b Binding) bool {
	defer e.flushObs()
	if p := PlanFor(t); e.useCompiled(p) {
		r := e.getRun(p)
		mask := uint64(0)
		ok := true
		for _, v := range t.FrontierVars() {
			val, bound := b[v]
			if !bound {
				continue
			}
			sl, known := p.slotOf[v]
			if !known {
				ok = false
				break
			}
			r.regs[sl] = val
			mask |= uint64(1) << uint(sl)
		}
		if ok {
			r.side(true, mask)
			r.fn = srExists
			r.found = false
			r.rec(0, mask)
			found := r.found
			e.putRun(r)
			return found
		}
		e.putRun(r)
	}
	found := false
	e.joinAtoms(t.RHS, b.Restrict(t.FrontierVars()), func(Binding, []storage.TupleID) bool {
		found = true
		return false
	})
	return found
}

// Violations returns every violation of the mapping extending the seed
// binding (Definition 2.1), in deterministic order.
func (e *Engine) Violations(t *tgd.TGD, seed Binding) []Violation {
	defer e.flushObs()
	if p := PlanFor(t); e.useCompiled(p) {
		lr, rr := e.getRun(p), e.getRun(p)
		if mask, ok := p.seedMask(seed, lr.regs); ok {
			e.violationJoin(p, lr, rr, mask, false)
			e.putRun(rr)
			e.putRun(lr)
			out := e.vout
			e.vout = nil
			return out
		}
		e.putRun(rr)
		e.putRun(lr)
	}
	var out []Violation
	for _, m := range e.LHSMatches(t, seed) {
		if !e.RHSSatisfied(t, m.Binding) {
			out = append(out, Violation{TGD: t, Binding: m.Binding, Witness: m.Witness})
		}
	}
	return out
}

// violationJoin wires the LHS enumeration run lr and the nested RHS
// probe run rr (sharing lr's register file) and collects violations
// extending the seed shape into e.vout (see the field comment for why
// collection goes through the engine rather than a caller local).
func (e *Engine) violationJoin(p *Plan, lr, rr *slotRun, mask uint64, dedup bool) {
	lr.side(false, mask)
	lr.fn = srViolation
	lr.dedup = dedup
	lr.vout = &e.vout
	rr.regs = lr.regs
	rr.side(true, p.frontierMask)
	rr.fn = srExists
	lr.rhsRun = rr
	lr.rec(0, mask)
}

// Side selects which atoms of a mapping a seeded violation query
// binds the written tuple against.
type Side uint8

const (
	// SeedLHS seeds through LHS atoms: violations whose witness carries
	// the written values. Inserts and the insert half of modifications
	// create violations only this way.
	SeedLHS Side = iota
	// SeedRHS seeds through RHS atoms: violations whose RHS support
	// involved the written values — the "deleted RHS support" case of
	// Example 4.1.
	SeedRHS
	// SeedBoth unions both directions.
	SeedBoth
)

// String names the side.
func (s Side) String() string {
	switch s {
	case SeedLHS:
		return "lhs"
	case SeedRHS:
		return "rhs"
	default:
		return "both"
	}
}

// ViolationsSeeded evaluates the §4.2 violation query for mapping t
// seeded by a written tuple (rel, vals) on the chosen side: violations
// whose LHS atoms over rel carry the written values (SeedLHS), and/or
// violations whose frontier bindings flow from the written tuple
// through an RHS atom over rel (SeedRHS). The result is deduplicated
// and deterministic.
func (e *Engine) ViolationsSeeded(t *tgd.TGD, rel string, vals []model.Value, side Side) []Violation {
	if p := PlanFor(t); e.useCompiled(p) {
		return e.violationsSeededCompiled(p, rel, vals, side)
	}
	seen := make(map[string]bool)
	var out []Violation
	add := func(vs []Violation) {
		for i := range vs {
			v := vs[i]
			if k := v.Key(); !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
	}
	if side == SeedLHS || side == SeedBoth {
		for _, a := range t.LHS {
			if a.Rel != rel {
				continue
			}
			if b, ok := unifyValsAtom(vals, a, Binding{}); ok {
				add(e.Violations(t, b))
			}
		}
	}
	if side == SeedRHS || side == SeedBoth {
		for _, a := range t.RHS {
			if a.Rel != rel {
				continue
			}
			if b, ok := unifyValsAtom(vals, a, Binding{}); ok {
				add(e.Violations(t, b.Restrict(t.FrontierVars())))
			}
		}
	}
	return out
}

// violationsSeededCompiled is the slot-runtime seeded violation query:
// the written tuple's values unify straight into the register file,
// each seed shape runs its static order, and duplicates across seed
// atoms are rejected through the engine's reusable key buffer — a
// steady-state call that finds no violation allocates nothing.
func (e *Engine) violationsSeededCompiled(p *Plan, rel string, vals []model.Value, side Side) []Violation {
	defer e.flushObs()
	clear(e.seen)
	lr, rr := e.getRun(p), e.getRun(p)
	if side == SeedLHS || side == SeedBoth {
		for i := range p.lhs {
			a := &p.lhs[i]
			if a.rel != rel {
				continue
			}
			mask, ok := unifyRegs(vals, a, lr.regs)
			if !ok {
				continue
			}
			e.violationJoin(p, lr, rr, mask, true)
		}
	}
	if side == SeedRHS || side == SeedBoth {
		for i := range p.rhs {
			a := &p.rhs[i]
			if a.rel != rel {
				continue
			}
			mask, ok := unifyRegs(vals, a, lr.regs)
			if !ok {
				continue
			}
			e.violationJoin(p, lr, rr, mask&p.frontierMask, true)
		}
	}
	e.putRun(rr)
	e.putRun(lr)
	out := e.vout
	e.vout = nil
	return out
}

// UnifyValsAtom extends binding b by matching concrete values against
// an atom's terms; see unifyValsAtom. Exported for the chase engine's
// violation rechecks.
func UnifyValsAtom(vals []model.Value, a tgd.Atom, b Binding) (Binding, bool) {
	return unifyValsAtom(vals, a, b)
}

// AllViolations returns the violations of every mapping in the set, in
// mapping order then match order. Mainly used to validate that a
// database satisfies its mappings.
func (e *Engine) AllViolations(set *tgd.Set) []Violation {
	var out []Violation
	for _, t := range set.All() {
		out = append(out, e.Violations(t, nil)...)
	}
	return out
}

// Satisfied reports whether the snapshot satisfies every mapping.
func (e *Engine) Satisfied(set *tgd.Set) bool {
	defer e.flushObs()
	for _, t := range set.All() {
		violated := false
		if p := PlanFor(t); e.useCompiled(p) {
			lr, rr := e.getRun(p), e.getRun(p)
			lr.side(false, 0)
			lr.fn = srFirstViolation
			lr.found = false
			rr.regs = lr.regs
			rr.side(true, p.frontierMask)
			rr.fn = srExists
			lr.rhsRun = rr
			lr.rec(0, 0)
			violated = lr.found
			e.putRun(rr)
			e.putRun(lr)
		} else {
			e.joinAtoms(t.LHS, Binding{}, func(b Binding, _ []storage.TupleID) bool {
				if !e.RHSSatisfied(t, b) {
					violated = true
					return false
				}
				return true
			})
		}
		if violated {
			return false
		}
	}
	return true
}

// InstantiateRHS builds the tuples the standard chase would insert to
// repair a violation: each RHS atom instantiated under the binding,
// with one fresh labeled null per existential variable drawn from
// fresh. It returns the tuples aligned with the RHS atoms and the
// set of freshly minted nulls.
func InstantiateRHS(t *tgd.TGD, b Binding, fresh func() model.Value) ([]model.Tuple, map[model.Value]bool) {
	ext := make(Binding, len(b)+len(t.ExistentialVars()))
	for k, v := range b {
		ext[k] = v
	}
	freshNulls := make(map[model.Value]bool)
	for _, z := range t.ExistentialVars() {
		nv := fresh()
		ext[z] = nv
		freshNulls[nv] = true
	}
	out := make([]model.Tuple, len(t.RHS))
	for i, a := range t.RHS {
		vals := make([]model.Value, len(a.Terms))
		for j, term := range a.Terms {
			if term.IsVar {
				vals[j] = ext[term.Var]
			} else {
				vals[j] = model.Const(term.Const)
			}
		}
		out[i] = model.Tuple{Rel: a.Rel, Vals: vals}
	}
	return out, freshNulls
}
