// Package query evaluates the conjunctive queries that Youtopia's
// update exchange needs: LHS/RHS matching of mappings by homomorphism,
// violation detection (Definition 2.1), the seeded violation queries of
// §4.2 ("SELECT * FROM (LHS query) WHERE NOT EXISTS (SELECT * FROM
// (RHS query))" with bindings taken from a newly written tuple), and
// the correction queries used by the forward chase.
//
// Matching follows the homomorphism semantics of Fagin et al. [11]:
// labeled nulls in the database are ordinary domain values — a query
// constant matches only itself, while a query variable binds to any
// value, constant or null.
package query

import (
	"sort"
	"strings"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// Binding assigns values to mapping variables.
type Binding map[string]model.Value

// cloneSized copies a binding into a map sized for the given final
// variable count, so growth reallocations never happen when the caller
// knows how many variables the mapping can bind.
func (b Binding) cloneSized(size int) Binding {
	if size < len(b) {
		size = len(b)
	}
	out := make(Binding, size)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// clone copies a binding with headroom for a couple of extensions.
func (b Binding) clone() Binding {
	return b.cloneSized(len(b) + 2)
}

// Restrict returns the binding restricted to the given variables.
func (b Binding) Restrict(vars []string) Binding {
	out := make(Binding, len(vars))
	for _, v := range vars {
		if val, ok := b[v]; ok {
			out[v] = val
		}
	}
	return out
}

// String renders the binding deterministically, e.g. {c->Ithaca, n->x3}.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "->" + b[k].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Match is one homomorphism of a mapping's LHS into the database: the
// variable assignment plus the witness tuples, aligned positionally
// with the mapping's LHS atoms (Witness[i] matched LHS[i]).
type Match struct {
	Binding Binding
	Witness []storage.TupleID
}

// Violation is a mapping violation (Definition 2.1): an LHS match with
// no corresponding RHS match. Witness is aligned with the mapping's
// LHS atoms.
type Violation struct {
	TGD     *tgd.TGD
	Binding Binding
	Witness []storage.TupleID
}

// Key identifies the violation within a run: mapping name, witness
// tuple IDs in atom order, and the full binding. Keys are comparable
// only within one store instance (tuple IDs are store-scoped).
func (v *Violation) Key() string {
	var b strings.Builder
	b.WriteString(v.TGD.Name)
	b.WriteByte('|')
	for _, id := range v.Witness {
		b.WriteString(storageIDString(id))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(v.Binding.String())
	return b.String()
}

func storageIDString(id storage.TupleID) string {
	const digits = "0123456789"
	if id == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = digits[id%10]
		id /= 10
	}
	return string(buf[i:])
}

// String renders the violation for diagnostics.
func (v *Violation) String() string {
	return "violation of " + v.TGD.Name + " at " + v.Binding.String()
}

// WitnessSig renders a violation's identity canonically: the mapping
// name plus the witness tuples' current contents in atom order, with
// labeled nulls numbered by first occurrence across the whole
// sequence. Unlike Key it contains no tuple IDs, so two executions in
// equivalent states (equal up to null renaming and physical tuple
// identity) assign equal signatures to corresponding violations. The
// chase orders its violation processing by signature, which is what
// keeps the frontier — the order repairs are planned and decision
// contexts reach users — identical across serial, parallel, and
// sharded executions: tuple IDs are minted in schedule order and would
// otherwise leak the interleaving into repair order and, through it,
// into the final instance.
func (e *Engine) WitnessSig(v *Violation) string {
	var b strings.Builder
	b.WriteString(v.TGD.Name)
	ren := make(map[model.Value]int)
	for _, id := range v.Witness {
		b.WriteByte('|')
		t, ok := e.snap.GetTuple(id)
		if !ok {
			b.WriteByte('?')
			continue
		}
		b.WriteString(t.Rel)
		for _, val := range t.Vals {
			b.WriteByte(0x1f)
			if val.IsNull() {
				n, seen := ren[val]
				if !seen {
					n = len(ren) + 1
					ren[val] = n
				}
				b.WriteString("?")
				b.WriteString(storageIDString(storage.TupleID(n)))
			} else {
				b.WriteString("c")
				b.WriteString(val.ConstValue())
			}
		}
	}
	return b.String()
}

// Engine evaluates queries against one snapshot. It is not safe for
// concurrent use: the join scratch (pooled working bindings reused
// across evaluations — the match loop is the hottest code path in the
// system, and per-join map churn shows up in every chase step) is
// owned by one goroutine at a time, which is how every caller already
// uses an engine.
type Engine struct {
	snap *storage.Snapshot

	// bindingPool holds cleared scratch maps; joins pop one for their
	// working binding and push it back when the enumeration finishes.
	// Nested joins (Satisfied's RHS probe inside an LHS enumeration)
	// simply pop a second one. framePool does the same for the
	// per-join bookkeeping slices.
	bindingPool []Binding
	framePool   []*joinFrame
}

// joinFrame is the per-join bookkeeping: the witness under
// construction, the processed-atom set, and the per-level undo lists.
type joinFrame struct {
	witness []storage.TupleID
	done    []bool
	undo    [][]string
}

// getFrame returns a join frame with capacity for n atoms, pooled.
func (e *Engine) getFrame(n int) *joinFrame {
	var f *joinFrame
	if k := len(e.framePool); k > 0 {
		f = e.framePool[k-1]
		e.framePool = e.framePool[:k-1]
	} else {
		f = &joinFrame{}
	}
	if cap(f.witness) < n {
		f.witness = make([]storage.TupleID, n)
		f.done = make([]bool, n)
		f.undo = make([][]string, n)
	}
	f.witness = f.witness[:n]
	f.done = f.done[:n]
	for i := range f.done {
		f.done[i] = false
	}
	f.undo = f.undo[:n]
	return f
}

func (e *Engine) putFrame(f *joinFrame) { e.framePool = append(e.framePool, f) }

// getScratch returns a scratch binding pre-filled with b, drawing from
// the pool when possible; sizeHint sizes a fresh allocation for the
// join's full variable count.
func (e *Engine) getScratch(b Binding, sizeHint int) Binding {
	n := len(e.bindingPool)
	if n == 0 {
		return b.cloneSized(sizeHint)
	}
	out := e.bindingPool[n-1]
	e.bindingPool = e.bindingPool[:n-1]
	for k, v := range b {
		out[k] = v
	}
	return out
}

// putScratch clears a scratch binding and returns it to the pool.
func (e *Engine) putScratch(b Binding) {
	clear(b)
	e.bindingPool = append(e.bindingPool, b)
}

// NewEngine returns an engine reading through the given snapshot.
func NewEngine(snap *storage.Snapshot) *Engine {
	return &Engine{snap: snap}
}

// Snapshot returns the snapshot the engine reads through.
func (e *Engine) Snapshot() *storage.Snapshot { return e.snap }

// unifyValsAtom extends binding b by matching concrete values against
// an atom's terms. It reports false when a constant clashes or a
// variable is already bound to a different value.
func unifyValsAtom(vals []model.Value, a tgd.Atom, b Binding) (Binding, bool) {
	if len(vals) != len(a.Terms) {
		return nil, false
	}
	out := b
	copied := false
	for i, term := range a.Terms {
		v := vals[i]
		if !term.IsVar {
			if !v.IsConst() || v.ConstValue() != term.Const {
				return nil, false
			}
			continue
		}
		if bound, ok := out[term.Var]; ok {
			if bound != v {
				return nil, false
			}
			continue
		}
		if !copied {
			out = out.clone()
			copied = true
		}
		out[term.Var] = v
	}
	return out, true
}

// boundTermCount counts how many argument positions of the atom are
// determined under b (constants or bound variables).
func boundTermCount(a tgd.Atom, b Binding) int {
	n := 0
	for _, term := range a.Terms {
		if !term.IsVar {
			n++
			continue
		}
		if _, ok := b[term.Var]; ok {
			n++
		}
	}
	return n
}

// candidates returns tuple IDs that can possibly match the atom under
// b, using the most selective determined position, or every visible
// tuple of the relation when nothing is determined.
func (e *Engine) candidates(a tgd.Atom, b Binding) []storage.TupleID {
	bestCol := -1
	var bestIDs []storage.TupleID
	for i, term := range a.Terms {
		var val model.Value
		switch {
		case !term.IsVar:
			val = model.Const(term.Const)
		default:
			bound, ok := b[term.Var]
			if !ok {
				continue
			}
			val = bound
		}
		ids := e.snap.CandidatesByValue(a.Rel, i, val)
		if bestCol == -1 || len(ids) < len(bestIDs) {
			bestCol, bestIDs = i, ids
		}
		if len(bestIDs) == 0 {
			return nil
		}
	}
	if bestCol >= 0 {
		return bestIDs
	}
	// Unconstrained: every tuple of the relation is a candidate; the
	// caller's Get filters visibility.
	return e.snap.RelIDs(a.Rel)
}

// bindInPlace extends b by matching vals against the atom's terms,
// mutating b and recording the newly bound variables in *added (for
// undo). It reports false — with b already restored — when a constant
// clashes or a variable is bound to a different value.
func bindInPlace(vals []model.Value, a tgd.Atom, b Binding, added *[]string) bool {
	*added = (*added)[:0]
	for i, term := range a.Terms {
		v := vals[i]
		if !term.IsVar {
			if !v.IsConst() || v.ConstValue() != term.Const {
				undoBinds(b, *added)
				return false
			}
			continue
		}
		if bound, ok := b[term.Var]; ok {
			if bound != v {
				undoBinds(b, *added)
				return false
			}
			continue
		}
		b[term.Var] = v
		*added = append(*added, term.Var)
	}
	return true
}

func undoBinds(b Binding, added []string) {
	for _, v := range added {
		delete(b, v)
	}
}

// joinAtoms enumerates homomorphisms of the atom conjunction into the
// snapshot, extending seed binding b. The witness records, for each
// original atom position, the tuple matched to it. fn receives a
// private copy of the binding; returning false stops the enumeration.
// joinAtoms reports whether enumeration ran to completion.
//
// Bindings are extended in place with undo lists rather than cloned
// per candidate, the working binding is drawn from the engine's pool,
// and per-result copies are sized to their exact final variable count:
// the join is the hottest code path of the whole system (every
// violation query runs through it), so map churn here is workload-wide
// allocation churn.
func (e *Engine) joinAtoms(atoms []tgd.Atom, b Binding, fn func(Binding, []storage.TupleID) bool) bool {
	n := len(atoms)
	frame := e.getFrame(n)
	defer e.putFrame(frame)
	witness, done := frame.witness, frame.done
	// Upper bound on the join's final variable count: every variable
	// term of every atom could be distinct and unbound.
	varCap := len(b)
	for i := range atoms {
		for _, term := range atoms[i].Terms {
			if term.IsVar {
				varCap++
			}
		}
	}
	scratch := e.getScratch(b, varCap)
	defer e.putScratch(scratch)
	undo := frame.undo
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			w := make([]storage.TupleID, n)
			copy(w, witness)
			return fn(scratch.cloneSized(len(scratch)), w)
		}
		// Greedy: evaluate the most-bound unprocessed atom next.
		best := -1
		bestBound := -1
		for i, a := range atoms {
			if done[i] {
				continue
			}
			if bc := boundTermCount(a, scratch); bc > bestBound {
				best, bestBound = i, bc
			}
		}
		a := atoms[best]
		done[best] = true
		defer func() { done[best] = false }()
		level := &undo[n-remaining]
		for _, id := range e.candidates(a, scratch) {
			vals, ok := e.snap.Get(id)
			if !ok {
				continue
			}
			if !bindInPlace(vals, a, scratch, level) {
				continue
			}
			witness[best] = id
			cont := rec(remaining - 1)
			undoBinds(scratch, *level)
			if !cont {
				return false
			}
		}
		return true
	}
	return rec(n)
}

// LHSMatches returns every homomorphism of the mapping's LHS into the
// snapshot that extends the seed binding, in deterministic order.
func (e *Engine) LHSMatches(t *tgd.TGD, seed Binding) []Match {
	var out []Match
	if seed == nil {
		seed = Binding{}
	}
	e.joinAtoms(t.LHS, seed, func(b Binding, w []storage.TupleID) bool {
		out = append(out, Match{Binding: b, Witness: w})
		return true
	})
	return out
}

// RHSSatisfied reports whether the mapping's RHS has a complete match
// extending the binding (the existentially quantified variables bind
// freely).
func (e *Engine) RHSSatisfied(t *tgd.TGD, b Binding) bool {
	found := false
	e.joinAtoms(t.RHS, b.Restrict(t.FrontierVars()), func(Binding, []storage.TupleID) bool {
		found = true
		return false
	})
	return found
}

// Violations returns every violation of the mapping extending the seed
// binding (Definition 2.1), in deterministic order.
func (e *Engine) Violations(t *tgd.TGD, seed Binding) []Violation {
	var out []Violation
	for _, m := range e.LHSMatches(t, seed) {
		if !e.RHSSatisfied(t, m.Binding) {
			out = append(out, Violation{TGD: t, Binding: m.Binding, Witness: m.Witness})
		}
	}
	return out
}

// Side selects which atoms of a mapping a seeded violation query
// binds the written tuple against.
type Side uint8

const (
	// SeedLHS seeds through LHS atoms: violations whose witness carries
	// the written values. Inserts and the insert half of modifications
	// create violations only this way.
	SeedLHS Side = iota
	// SeedRHS seeds through RHS atoms: violations whose RHS support
	// involved the written values — the "deleted RHS support" case of
	// Example 4.1.
	SeedRHS
	// SeedBoth unions both directions.
	SeedBoth
)

// String names the side.
func (s Side) String() string {
	switch s {
	case SeedLHS:
		return "lhs"
	case SeedRHS:
		return "rhs"
	default:
		return "both"
	}
}

// ViolationsSeeded evaluates the §4.2 violation query for mapping t
// seeded by a written tuple (rel, vals) on the chosen side: violations
// whose LHS atoms over rel carry the written values (SeedLHS), and/or
// violations whose frontier bindings flow from the written tuple
// through an RHS atom over rel (SeedRHS). The result is deduplicated
// and deterministic.
func (e *Engine) ViolationsSeeded(t *tgd.TGD, rel string, vals []model.Value, side Side) []Violation {
	seen := make(map[string]bool)
	var out []Violation
	add := func(vs []Violation) {
		for i := range vs {
			v := vs[i]
			if k := v.Key(); !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
	}
	if side == SeedLHS || side == SeedBoth {
		for _, a := range t.LHS {
			if a.Rel != rel {
				continue
			}
			if b, ok := unifyValsAtom(vals, a, Binding{}); ok {
				add(e.Violations(t, b))
			}
		}
	}
	if side == SeedRHS || side == SeedBoth {
		for _, a := range t.RHS {
			if a.Rel != rel {
				continue
			}
			if b, ok := unifyValsAtom(vals, a, Binding{}); ok {
				add(e.Violations(t, b.Restrict(t.FrontierVars())))
			}
		}
	}
	return out
}

// UnifyValsAtom extends binding b by matching concrete values against
// an atom's terms; see unifyValsAtom. Exported for the chase engine's
// violation rechecks.
func UnifyValsAtom(vals []model.Value, a tgd.Atom, b Binding) (Binding, bool) {
	return unifyValsAtom(vals, a, b)
}

// AllViolations returns the violations of every mapping in the set, in
// mapping order then match order. Mainly used to validate that a
// database satisfies its mappings.
func (e *Engine) AllViolations(set *tgd.Set) []Violation {
	var out []Violation
	for _, t := range set.All() {
		out = append(out, e.Violations(t, nil)...)
	}
	return out
}

// Satisfied reports whether the snapshot satisfies every mapping.
func (e *Engine) Satisfied(set *tgd.Set) bool {
	for _, t := range set.All() {
		violated := false
		e.joinAtoms(t.LHS, Binding{}, func(b Binding, _ []storage.TupleID) bool {
			if !e.RHSSatisfied(t, b) {
				violated = true
				return false
			}
			return true
		})
		if violated {
			return false
		}
	}
	return true
}

// InstantiateRHS builds the tuples the standard chase would insert to
// repair a violation: each RHS atom instantiated under the binding,
// with one fresh labeled null per existential variable drawn from
// fresh. It returns the tuples aligned with the RHS atoms and the
// set of freshly minted nulls.
func InstantiateRHS(t *tgd.TGD, b Binding, fresh func() model.Value) ([]model.Tuple, map[model.Value]bool) {
	ext := make(Binding, len(b)+len(t.ExistentialVars()))
	for k, v := range b {
		ext[k] = v
	}
	freshNulls := make(map[model.Value]bool)
	for _, z := range t.ExistentialVars() {
		nv := fresh()
		ext[z] = nv
		freshNulls[nv] = true
	}
	out := make([]model.Tuple, len(t.RHS))
	for i, a := range t.RHS {
		vals := make([]model.Value, len(a.Terms))
		for j, term := range a.Terms {
			if term.IsVar {
				vals[j] = ext[term.Var]
			} else {
				vals[j] = model.Const(term.Const)
			}
		}
		out[i] = model.Tuple{Rel: a.Rel, Vals: vals}
	}
	return out, freshNulls
}
