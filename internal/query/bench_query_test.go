package query

import (
	"fmt"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// benchWorld builds a two-relation join world: A(x, y) ⋈ T(y, z) with
// a mapping requiring every join pair to have an R entry.
func benchWorld(b *testing.B, rows int) (*storage.Store, *tgd.TGD) {
	b.Helper()
	s := model.NewSchema()
	s.MustAddRelation("A", "x", "y")
	s.MustAddRelation("T", "y", "z")
	s.MustAddRelation("R", "x", "z")
	m := tgd.New("m",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x"), tgd.V("y")),
			tgd.NewAtom("T", tgd.V("y"), tgd.V("z"))},
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("x"), tgd.V("z"))})
	st := storage.NewStore(s)
	for i := 0; i < rows; i++ {
		st.Load(model.NewTuple("A",
			c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("j%d", i%40))))
		st.Load(model.NewTuple("T",
			c(fmt.Sprintf("j%d", i%40)), c(fmt.Sprintf("z%d", i))))
		if i%2 == 0 {
			st.Load(model.NewTuple("R",
				c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("z%d", i))))
		}
	}
	return st, m
}

func BenchmarkLHSMatchesSeeded(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	seed := Binding{"y": c("j7")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := e.LHSMatches(m, seed)
		if len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkViolationsSeeded(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	vals := []model.Value{c("a8"), c("j8")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ViolationsSeeded(m, "A", vals, SeedLHS)
	}
}

func BenchmarkRHSSatisfied(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.RHSSatisfied(m, bnd) {
			b.Fatal("must be satisfied")
		}
	}
}

// BenchmarkJoinBindingChurn pins the allocation behaviour of the
// match hot loop (run with -benchmem): on the compiled slot runtime a
// steady-state early-stopping join costs 0 allocs/op — the register
// file and witness scratch come from the engine's run pool, the bound
// set is a stack bitmask, and the match callback is a package-level
// function, so nothing escapes. The companion regression test
// TestJoinBindingAllocBound turns the number into a gate; the
// interpreted fallback engine keeps its historical 3 allocs/op bound
// (recursion closure plus the escaping result binding).
func BenchmarkJoinBindingChurn(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	if !e.RHSSatisfied(m, bnd) { // warm the pools
		b.Fatal("must be satisfied")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.RHSSatisfied(m, bnd) {
			b.Fatal("must be satisfied")
		}
	}
}

// TestJoinBindingAllocBound is the -benchmem guard in test form: the
// steady-state early-stopping join on the compiled slot runtime must
// not allocate at all. A regression here means binding, frame, or
// closure churn crept back into the hottest loop of the system. The
// interpreted fallback keeps its historical bound of 3 heap
// allocations (closure + result binding header and buckets).
func TestJoinBindingAllocBound(t *testing.T) {
	st, m := benchWorld(&testing.B{}, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	if !e.RHSSatisfied(m, bnd) { // warm the pools
		t.Fatal("must be satisfied")
	}
	got := testing.AllocsPerRun(200, func() {
		e.RHSSatisfied(m, bnd)
	})
	if got != 0 {
		t.Fatalf("steady-state compiled join allocates %.1f times per op, want 0", got)
	}

	ie := NewInterpretedEngine(st.Snap(1))
	if !ie.RHSSatisfied(m, bnd) {
		t.Fatal("must be satisfied")
	}
	got = testing.AllocsPerRun(200, func() {
		ie.RHSSatisfied(m, bnd)
	})
	if got > 3 {
		t.Fatalf("steady-state interpreted join allocates %.1f times per op, want <= 3", got)
	}
}

// TestSeededQueryAllocFree pins the full §4.2 seeded violation query:
// when the write creates no violation — the overwhelmingly common
// steady state of a satisfied database — the whole evaluation (seed
// unification, LHS join, RHS probes, dedup) performs zero heap
// allocations on a warm engine.
func TestSeededQueryAllocFree(t *testing.T) {
	s := model.NewSchema()
	s.MustAddRelation("A", "x", "y")
	s.MustAddRelation("T", "y", "z")
	s.MustAddRelation("R", "x", "z")
	m := tgd.New("sat",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x"), tgd.V("y")),
			tgd.NewAtom("T", tgd.V("y"), tgd.V("z"))},
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("x"), tgd.V("z"))})
	st := storage.NewStore(s)
	// Each join value j_k has exactly one T row, and every A row's
	// single join pair is covered by R: the database is satisfied.
	for k := 0; k < 5; k++ {
		st.Load(model.NewTuple("T", c(fmt.Sprintf("j%d", k)), c(fmt.Sprintf("z%d", k))))
	}
	for i := 0; i < 200; i++ {
		st.Load(model.NewTuple("A", c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("j%d", i%5))))
		st.Load(model.NewTuple("R", c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("z%d", i%5))))
	}
	e := NewEngine(st.Snap(1))
	vals := []model.Value{c("a0"), c("j0")}
	if vs := e.ViolationsSeeded(m, "A", vals, SeedLHS); len(vs) != 0 {
		t.Fatalf("satisfied world reports %d violations", len(vs))
	}
	got := testing.AllocsPerRun(200, func() {
		e.ViolationsSeeded(m, "A", vals, SeedLHS)
	})
	if got != 0 {
		t.Fatalf("steady-state seeded violation query allocates %.1f times per op, want 0", got)
	}
}

func BenchmarkViolationReadAffectedBy(b *testing.B) {
	st, m := benchWorld(b, 1000)
	_, w, _, err := st.Insert(2, model.NewTuple("A", c("fresh"), c("j3")))
	if err != nil {
		b.Fatal(err)
	}
	q, _ := NewViolationRead(st, m, w.Rel, w.After, SeedLHS, 2)
	// A later write by update 1 joining through j3.
	_, w1, _, err := st.Insert(1, model.NewTuple("T", c("j3"), c("zz")))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.AffectedBy(st, w1) {
			b.Fatal("must be affected")
		}
	}
}
