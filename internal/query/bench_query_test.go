package query

import (
	"fmt"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// benchWorld builds a two-relation join world: A(x, y) ⋈ T(y, z) with
// a mapping requiring every join pair to have an R entry.
func benchWorld(b *testing.B, rows int) (*storage.Store, *tgd.TGD) {
	b.Helper()
	s := model.NewSchema()
	s.MustAddRelation("A", "x", "y")
	s.MustAddRelation("T", "y", "z")
	s.MustAddRelation("R", "x", "z")
	m := tgd.New("m",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x"), tgd.V("y")),
			tgd.NewAtom("T", tgd.V("y"), tgd.V("z"))},
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("x"), tgd.V("z"))})
	st := storage.NewStore(s)
	for i := 0; i < rows; i++ {
		st.Load(model.NewTuple("A",
			c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("j%d", i%40))))
		st.Load(model.NewTuple("T",
			c(fmt.Sprintf("j%d", i%40)), c(fmt.Sprintf("z%d", i))))
		if i%2 == 0 {
			st.Load(model.NewTuple("R",
				c(fmt.Sprintf("a%d", i)), c(fmt.Sprintf("z%d", i))))
		}
	}
	return st, m
}

func BenchmarkLHSMatchesSeeded(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	seed := Binding{"y": c("j7")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := e.LHSMatches(m, seed)
		if len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkViolationsSeeded(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	vals := []model.Value{c("a8"), c("j8")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ViolationsSeeded(m, "A", vals, SeedLHS)
	}
}

func BenchmarkRHSSatisfied(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.RHSSatisfied(m, bnd) {
			b.Fatal("must be satisfied")
		}
	}
}

// BenchmarkJoinBindingChurn pins the binding-allocation behaviour of
// the match hot loop (run with -benchmem): an early-stopping join on a
// warm engine costs 3 allocs/op — the recursion closure plus the one
// escaping result binding — because the working binding and the
// per-join frame come from the engine's pools and clones are sized to
// the mapping's variable count. Production engines are constructed
// per evaluation, not reused across them, so the first join of an
// evaluation pays the cold cost the pre-pool code always paid; the
// pools earn their keep within an evaluation — every violation query
// runs one LHS join plus one RHS-satisfaction join per match on the
// same engine, and all joins after the first hit the warm pools this
// benchmark measures. The companion regression test
// TestJoinBindingAllocBound turns the number into a gate.
func BenchmarkJoinBindingChurn(b *testing.B) {
	st, m := benchWorld(b, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	if !e.RHSSatisfied(m, bnd) { // warm the pools
		b.Fatal("must be satisfied")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.RHSSatisfied(m, bnd) {
			b.Fatal("must be satisfied")
		}
	}
}

// TestJoinBindingAllocBound is the -benchmem guard in test form: the
// steady-state early-stopping join must stay within 3 heap
// allocations (closure + result binding header and buckets). A
// regression here means binding or frame churn crept back into the
// hottest loop of the system.
func TestJoinBindingAllocBound(t *testing.T) {
	st, m := benchWorld(&testing.B{}, 1000)
	e := NewEngine(st.Snap(1))
	bnd := Binding{"x": c("a10"), "z": c("z10")}
	if !e.RHSSatisfied(m, bnd) { // warm the pools
		t.Fatal("must be satisfied")
	}
	got := testing.AllocsPerRun(200, func() {
		e.RHSSatisfied(m, bnd)
	})
	if got > 3 {
		t.Fatalf("steady-state join allocates %.1f times per op, want <= 3", got)
	}
}

func BenchmarkViolationReadAffectedBy(b *testing.B) {
	st, m := benchWorld(b, 1000)
	_, w, _, err := st.Insert(2, model.NewTuple("A", c("fresh"), c("j3")))
	if err != nil {
		b.Fatal(err)
	}
	q, _ := NewViolationRead(st, m, w.Rel, w.After, SeedLHS, 2)
	// A later write by update 1 joining through j3.
	_, w1, _, err := st.Insert(1, model.NewTuple("T", c("j3"), c("zz")))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.AffectedBy(st, w1) {
			b.Fatal("must be affected")
		}
	}
}
