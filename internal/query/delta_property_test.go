package query

import (
	"fmt"
	"math/rand"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// randomWorld builds a small random schema, mapping and instance for
// delta-evaluation properties.
func randomWorld(seed int64) (*storage.Store, *tgd.TGD, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	s := model.NewSchema()
	nRels := rng.Intn(3) + 2
	for i := 0; i < nRels; i++ {
		arity := rng.Intn(2) + 1
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		s.MustAddRelation(fmt.Sprintf("P%d", i), attrs...)
	}
	rels := s.Names()
	mkAtom := func(vars []string) tgd.Atom {
		rel := rels[rng.Intn(len(rels))]
		terms := make([]tgd.Term, s.Arity(rel))
		for j := range terms {
			terms[j] = tgd.V(vars[rng.Intn(len(vars))])
		}
		return tgd.NewAtom(rel, terms...)
	}
	var m *tgd.TGD
	for {
		lhs := []tgd.Atom{mkAtom([]string{"x", "y"})}
		if rng.Intn(2) == 0 {
			lhs = append(lhs, mkAtom([]string{"x", "y", "w"}))
		}
		rhs := []tgd.Atom{mkAtom([]string{"x", "z"})}
		m = tgd.New("m", lhs, rhs)
		if m.Validate(s) == nil {
			break
		}
	}
	st := storage.NewStore(s)
	pool := []model.Value{model.Const("a"), model.Const("b"), model.Const("c")}
	for i := 0; i < rng.Intn(20)+5; i++ {
		rel := rels[rng.Intn(len(rels))]
		vals := make([]model.Value, s.Arity(rel))
		for j := range vals {
			vals[j] = pool[rng.Intn(len(pool))]
		}
		st.Load(model.NewTuple(rel, vals...))
	}
	return st, m, rng
}

// TestSeededViolationsSoundAndComplete checks the delta property the
// chase relies on: after a write, the violations returned by the
// seeded query are exactly the full violation set's members whose
// witness or lost support involves the written values.
func TestSeededViolationsSoundAndComplete(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		st, m, rng := randomWorld(seed)
		e := NewEngine(st.Snap(10))

		// Perform one random insert.
		rels := st.Schema().Names()
		rel := rels[rng.Intn(len(rels))]
		vals := make([]model.Value, st.Schema().Arity(rel))
		pool := []model.Value{model.Const("a"), model.Const("b"), model.Const("d")}
		for j := range vals {
			vals[j] = pool[rng.Intn(len(pool))]
		}
		_, w, ins, err := st.Insert(5, model.NewTuple(rel, vals...))
		if err != nil {
			t.Fatal(err)
		}
		if !ins {
			continue
		}

		full := e.Violations(m, nil)
		fullKeys := make(map[string]bool, len(full))
		for i := range full {
			fullKeys[full[i].Key()] = true
		}
		seeded := e.ViolationsSeeded(m, w.Rel, w.After, SeedLHS)

		// Soundness: every seeded violation is a real violation.
		for i := range seeded {
			if !fullKeys[seeded[i].Key()] {
				t.Fatalf("seed %d: seeded violation %s not in full set", seed, seeded[i].Key())
			}
		}
		// Completeness for the written tuple: every full violation whose
		// witness uses the written tuple's values at an LHS atom over
		// its relation must be found by the seeded query.
		seededKeys := make(map[string]bool, len(seeded))
		for i := range seeded {
			seededKeys[seeded[i].Key()] = true
		}
		snap := st.Snap(10)
		for i := range full {
			usesWrite := false
			for _, id := range full[i].Witness {
				tv, ok := snap.GetTuple(id)
				if ok && tv.Rel == w.Rel && (model.Tuple{Rel: w.Rel, Vals: w.After}).Equal(tv) {
					usesWrite = true
				}
			}
			if usesWrite && !seededKeys[full[i].Key()] {
				t.Fatalf("seed %d: violation %s involves the write but was missed", seed, full[i].Key())
			}
		}
	}
}

// TestAffectedByAgreesWithRecomputation cross-checks the incremental
// conflict test against brute force: for a stored violation query and
// a later write, AffectedBy must say "changed" exactly when the
// re-evaluated answer (as of read time plus the write) differs from
// the recorded one.
func TestAffectedByAgreesWithRecomputation(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		st, m, rng := randomWorld(seed + 1000)
		rels := st.Schema().Names()
		randTuple := func() model.Tuple {
			rel := rels[rng.Intn(len(rels))]
			vals := make([]model.Value, st.Schema().Arity(rel))
			pool := []model.Value{model.Const("a"), model.Const("b"), model.Const("d")}
			for j := range vals {
				vals[j] = pool[rng.Intn(len(vals))+0] // deterministic-ish mix
				vals[j] = pool[rng.Intn(len(pool))]
			}
			return model.NewTuple(rel, vals...)
		}

		// Reader 5 performs a write and poses its violation query.
		_, w5, ins, err := st.Insert(5, randTuple())
		if err != nil {
			t.Fatal(err)
		}
		if !ins {
			continue
		}
		readSeq := st.CurrentSeq()
		q, _ := NewViolationRead(st, m, w5.Rel, w5.After, SeedLHS, 5)

		// Writer 2 performs a later write.
		var w2 storage.WriteRec
		if rng.Intn(2) == 0 {
			_, w2, ins, err = st.Insert(2, randTuple())
			if err != nil || !ins {
				continue
			}
		} else {
			recs, err := st.DeleteContent(2, randTuple())
			if err != nil || len(recs) == 0 {
				continue
			}
			w2 = recs[0]
		}

		got := q.AffectedBy(st, w2)
		// Brute force: answer as of read time + interference window,
		// with the read time expressed as one global ceiling captured
		// independently of the query's per-relation vector. This
		// execution is single-threaded, so the two reconstructions must
		// agree — which checks the vector capture and the structural
		// prefilters at once.
		want := q.answerCanon(st.Snap(5).WithWindow(readSeq, w2.Seq)) != q.Answer
		if got != want {
			t.Fatalf("seed %d: AffectedBy = %v, brute force = %v (write %v)", seed, got, want, w2)
		}
	}
}
