package query

import (
	"fmt"
	"sort"
	"strings"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// This file defines the stored read queries of §4.2 and the
// "retroactively changes the result" checks of Algorithm 4 and §5.1.
//
// A chase step reads the database through a small number of query
// shapes. Each shape is stored intensionally; concurrency control later
// asks whether a freshly performed write changes its answer. The paper
// observes (§5) that correction queries can be checked against a write
// without touching the database, while violation queries need a
// (seeded, therefore cheap) database query; the implementations below
// preserve that asymmetry, which is what makes COARSE cheaper than
// PRECISE.

// Kind classifies a read query.
type Kind uint8

const (
	// KindViolation is the seeded violation query of §4.2.
	KindViolation Kind = iota
	// KindMoreSpecific is the correction query "find tuples in R more
	// specific than t".
	KindMoreSpecific
	// KindNullOcc is the correction query "find all tuples containing
	// labeled null x".
	KindNullOcc
	// KindContent is the set-semantics duplicate/content probe issued
	// by inserts and content deletes.
	KindContent
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindViolation:
		return "violation"
	case KindMoreSpecific:
		return "more-specific"
	case KindNullOcc:
		return "null-occurrence"
	case KindContent:
		return "content"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ReadQuery is a stored, intensional description of one read performed
// by a chase step.
type ReadQuery interface {
	// Kind classifies the query.
	Kind() Kind
	// Reader is the priority number of the update that performed the
	// read.
	Reader() int
	// Relations returns the relations the query ranges over; COARSE
	// charges relation-granularity dependencies against violation
	// queries using this. Correction queries return only their own
	// relation (or nothing), and COARSE never uses it for them.
	Relations() []string
	// AffectedBy reports whether the given write, already applied to
	// the store, retroactively changes this query's answer as seen by
	// the reader. Writes that are invisible to the reader never affect
	// the answer.
	AffectedBy(st storage.Backend, w storage.WriteRec) bool
	// String renders the query for diagnostics.
	String() string
}

// ViolationRead stores a seeded violation query: "which violations of
// TGD did the write of SeedVals into SeedRel create?" (Example 4.1).
// Besides the intensional query it records the canonical answer and a
// per-relation read vector — each of the mapping's relations paired
// with its stripe sequence number at read time — so conflict checks
// can ask whether a later write retroactively changes what was read,
// even after the reader's own repairs have moved the current answer
// on. The vector replaces an earlier single global read sequence: a
// read's validity boundary is judged per stripe, which stays exact
// when stripes advance independently (relation-partitioned backends,
// or any evaluation that observed different stripes at different
// moments).
type ViolationRead struct {
	TGD      *tgd.TGD
	SeedRel  string
	SeedVals []model.Value
	// SeedSide records which atoms the seed was bound against; the
	// re-evaluation used by AffectedBy reproduces the same query.
	SeedSide Side
	ReaderNo int
	// Answer is the canonical rendering of the violations read.
	Answer string
	// ReadSeqs is the per-relation read vector: for every relation the
	// mapping ranges over, the relation's stripe sequence number when
	// the read happened. Two reads of the same seeded query with equal
	// vectors observed identical relevant state (the answer depends on
	// no other relations), so the vector doubles as the read's identity
	// in String.
	ReadSeqs []storage.RelSeq
}

// NewViolationRead evaluates the seeded violation query on the
// reader's snapshot and returns both the stored read descriptor and
// the violations it found. The read vector is captured before the
// evaluation: per stripe, everything at or below the captured
// sequence is already applied (stripe sequences publish under the
// stripe lock), so the vector lower-bounds what the evaluation saw in
// each relation and is exact whenever no writer runs during the read
// — which the schedulers' phase locking guarantees.
func NewViolationRead(st storage.Backend, t *tgd.TGD, seedRel string, seedVals []model.Value, side Side, reader int) (*ViolationRead, []Violation) {
	rels := t.Relations()
	seqs := make([]storage.RelSeq, len(rels))
	for i, rel := range rels {
		seqs[i] = storage.RelSeq{Rel: rel, Seq: st.RelSeq(rel)}
	}
	q := &ViolationRead{
		TGD:      t,
		SeedRel:  seedRel,
		SeedVals: append([]model.Value(nil), seedVals...),
		SeedSide: side,
		ReaderNo: reader,
		ReadSeqs: seqs,
	}
	vs := q.eval(NewEngine(st.Snap(reader)))
	q.Answer = canonViolations(vs)
	return q, vs
}

// readCeil returns the read vector's boundary for a relation (0 when
// the relation is outside the mapping, which callers pre-filter).
func (q *ViolationRead) readCeil(rel string) int64 {
	for i := range q.ReadSeqs {
		if q.ReadSeqs[i].Rel == rel {
			return q.ReadSeqs[i].Seq
		}
	}
	return 0
}

// canonViolations renders a violation set canonically.
func canonViolations(vs []Violation) string {
	keys := make([]string, len(vs))
	for i := range vs {
		keys[i] = vs[i].Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// Kind implements ReadQuery.
func (q *ViolationRead) Kind() Kind { return KindViolation }

// Reader implements ReadQuery.
func (q *ViolationRead) Reader() int { return q.ReaderNo }

// Relations implements ReadQuery: every relation of the mapping.
func (q *ViolationRead) Relations() []string { return q.TGD.Relations() }

// String implements ReadQuery. It identifies the read, including its
// read-time vector: the same intensional query read at different
// moments guards different answers, so both instances are kept —
// unless the vectors are equal, in which case no write landed in any
// relation the answer depends on and the reads are genuinely the
// same.
func (q *ViolationRead) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation-query[%s seeded %s by %s @", q.TGD.Name, q.SeedSide,
		model.Tuple{Rel: q.SeedRel, Vals: q.SeedVals})
	for i := range q.ReadSeqs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", q.ReadSeqs[i].Seq)
	}
	b.WriteByte(']')
	return b.String()
}

// mayTouch is a cheap structural prefilter: can values unify with any
// atom of the mapping over the write's relation?
func mayTouch(t *tgd.TGD, rel string, vals []model.Value) bool {
	if vals == nil {
		return false
	}
	for _, a := range t.LHS {
		if a.Rel == rel {
			if _, ok := unifyValsAtom(vals, a, Binding{}); ok {
				return true
			}
		}
	}
	for _, a := range t.RHS {
		if a.Rel == rel {
			if _, ok := unifyValsAtom(vals, a, Binding{}); ok {
				return true
			}
		}
	}
	return false
}

// answerCanon renders the full answer of the stored query on a
// snapshot, canonically.
func (q *ViolationRead) answerCanon(snap *storage.Snapshot) string {
	return canonViolations(q.eval(NewEngine(snap)))
}

// eval re-evaluates the stored query on an engine.
func (q *ViolationRead) eval(e *Engine) []Violation {
	return e.ViolationsSeeded(q.TGD, q.SeedRel, q.SeedVals, q.SeedSide)
}

// AffectedBy implements ReadQuery: does the write change what was read
// at read time? Whether the write precedes or follows the read is
// judged against the read vector's boundary for the write's own
// relation — the per-stripe validity window — not a global sequence.
// For a write past its relation's boundary, the answer is re-evaluated
// on the read-time state (each relation cut at its own boundary)
// augmented with the interference window — every write up to and
// including w, in any relation, by writers other than the reader (the
// reader's own later repairs must not hide the change; the global
// upper bound is meaningful because sequence numbers are totally
// ordered backend-wide, shards included). For a write at or below its
// relation's boundary (the dependency direction of §5.1), the
// read-time state is re-evaluated with that single write masked.
// Either way a difference from the recorded answer means the write
// influences the read. This is the "single query combining the
// original violation query with information about the new tuple" of
// §5; modifications are delete-then-insert records, exactly as the
// paper prescribes.
func (q *ViolationRead) AffectedBy(st storage.Backend, w storage.WriteRec) bool {
	if w.Writer > q.ReaderNo {
		return false // invisible to the reader
	}
	if !q.TGD.UsesRelation(w.Rel) {
		return false
	}
	if !mayTouch(q.TGD, w.Rel, w.After) && !mayTouch(q.TGD, w.Rel, w.Before) {
		return false
	}
	base := st.Snap(q.ReaderNo)
	var snap *storage.Snapshot
	if w.Seq > q.readCeil(w.Rel) {
		snap = base.WithRelWindow(q.ReadSeqs, w.Seq)
	} else {
		snap = base.WithRelCeilings(q.ReadSeqs).WithMask(w.Writer, w.Seq)
	}
	return q.answerCanon(snap) != q.Answer
}

// AffectedByRemoval reports whether undoing the given writes — an
// aborted writer's removed log, already taken out of the store —
// retroactively changes this query's answer as seen by the reader.
//
// This is the abort-side counterpart of AffectedBy, and it exists
// because an abort can invalidate verdicts that earlier write-side
// checks delivered honestly: a check of write w evaluates the
// read-time state plus the interference up to w, and if part of that
// interference is later rolled back — and its writer's rerun takes a
// different path — no subsequent write ever re-asks the question,
// leaving the reader's guarded answer stale against the state it will
// actually commit over. Structural queries never have the problem
// (their write-side checks are state-independent, so a matching write
// either already aborted the reader or already recorded the
// dependency that cascades it); only the violation query's
// database-evaluated check can have its verdict flipped by a removal.
// The re-evaluation therefore runs the read-time state forward over
// ALL currently live interference (window open to the present) — if
// that drifted from the recorded answer, the reader must abort and
// rerun.
//
// The removed records only gate the evaluation: a removal is relevant
// when some removed write was visible to the reader and could touch
// the mapping. Irrelevant removals return false without touching the
// database.
func (q *ViolationRead) AffectedByRemoval(st storage.Backend, removed []storage.WriteRec) bool {
	relevant := false
	for _, w := range removed {
		if w.Writer > q.ReaderNo || !q.TGD.UsesRelation(w.Rel) {
			continue
		}
		if mayTouch(q.TGD, w.Rel, w.After) || mayTouch(q.TGD, w.Rel, w.Before) {
			relevant = true
			break
		}
	}
	if !relevant {
		return false
	}
	snap := st.Snap(q.ReaderNo).WithRelWindow(q.ReadSeqs, st.CurrentSeq())
	return q.answerCanon(snap) != q.Answer
}

// MoreSpecificRead stores the correction query "find tuples of Rel
// more specific than Pattern" (§4.2).
type MoreSpecificRead struct {
	Rel      string
	Pattern  []model.Value
	ReaderNo int
}

// Kind implements ReadQuery.
func (q *MoreSpecificRead) Kind() Kind { return KindMoreSpecific }

// Reader implements ReadQuery.
func (q *MoreSpecificRead) Reader() int { return q.ReaderNo }

// Relations implements ReadQuery.
func (q *MoreSpecificRead) Relations() []string { return []string{q.Rel} }

// String implements ReadQuery.
func (q *MoreSpecificRead) String() string {
	return fmt.Sprintf("more-specific-query[%s]", model.Tuple{Rel: q.Rel, Vals: q.Pattern})
}

// AffectedBy implements ReadQuery structurally, without touching the
// database: a write changes the answer iff it writes or removes a
// tuple more specific than the pattern.
func (q *MoreSpecificRead) AffectedBy(_ storage.Backend, w storage.WriteRec) bool {
	if w.Writer > q.ReaderNo || w.Rel != q.Rel {
		return false
	}
	match := func(vals []model.Value) bool {
		return vals != nil && model.MoreSpecificVals(vals, q.Pattern)
	}
	return match(w.After) || match(w.Before)
}

// NullOccRead stores the correction query "find all tuples containing
// labeled null X" (§4.2): the write set of a unification.
type NullOccRead struct {
	Null     model.Value
	ReaderNo int
}

// Kind implements ReadQuery.
func (q *NullOccRead) Kind() Kind { return KindNullOcc }

// Reader implements ReadQuery.
func (q *NullOccRead) Reader() int { return q.ReaderNo }

// Relations implements ReadQuery: the query ranges over the whole
// database, but COARSE computes correction-query dependencies exactly
// from the write log (§5.1.1), so no relation set is needed.
func (q *NullOccRead) Relations() []string { return nil }

// String implements ReadQuery.
func (q *NullOccRead) String() string {
	return fmt.Sprintf("null-occurrence-query[%s]", q.Null)
}

// AffectedBy implements ReadQuery: as the paper notes, "a given tuple
// write changes the answer to a correction query either on all
// databases, or on none" — here, iff the written tuple contains the
// null (before or after).
func (q *NullOccRead) AffectedBy(_ storage.Backend, w storage.WriteRec) bool {
	if w.Writer > q.ReaderNo {
		return false
	}
	has := func(vals []model.Value) bool {
		for _, v := range vals {
			if v == q.Null {
				return true
			}
		}
		return false
	}
	return has(w.Before) || has(w.After)
}

// ContentRead stores the set-semantics probe "is the fact (Rel, Vals)
// present?". Inserts log it when they no-op against a visible
// duplicate; content deletes log it to pin the set of copies they
// removed. It is checked structurally.
type ContentRead struct {
	Rel      string
	Vals     []model.Value
	ReaderNo int
}

// Kind implements ReadQuery.
func (q *ContentRead) Kind() Kind { return KindContent }

// Reader implements ReadQuery.
func (q *ContentRead) Reader() int { return q.ReaderNo }

// Relations implements ReadQuery.
func (q *ContentRead) Relations() []string { return []string{q.Rel} }

// String implements ReadQuery. The rendering doubles as the read-dedup
// key and is built once per insert/delete on the hot write path, so it
// uses the tuple's cheap canonical key rather than display formatting.
func (q *ContentRead) String() string {
	return "content-query[" + (model.Tuple{Rel: q.Rel, Vals: q.Vals}).Key() + "]"
}

// AffectedBy implements ReadQuery: a write affects the probe iff it
// writes or removes exactly this content.
func (q *ContentRead) AffectedBy(_ storage.Backend, w storage.WriteRec) bool {
	if w.Writer > q.ReaderNo || w.Rel != q.Rel {
		return false
	}
	eq := func(vals []model.Value) bool {
		if len(vals) != len(q.Vals) {
			return false
		}
		for i := range vals {
			if vals[i] != q.Vals[i] {
				return false
			}
		}
		return true
	}
	return eq(w.Before) || eq(w.After)
}
