// Compiled mapping plans. Every violation query, seeded check, and
// correction probe of the chase interprets the same dozen mappings
// millions of times; this file compiles each tgd.TGD once into a form
// the slot runtime (slots.go) executes with no string hashing and no
// per-call planning:
//
//   - a dense variable slot table — bindings become a register file
//     ([]model.Value indexed by slot) plus one uint64 bound bitmask,
//     replacing map[string]model.Value on the hot path;
//   - per-atom term descriptors — each argument position is either an
//     interned constant Value (baked in at compile time, so the join
//     never re-interns a mapping constant) or a slot number;
//   - a static join order per seed shape, chosen once from committed-
//     epoch cardinality stats (storage.Snapshot.RelStats: live counts
//     and per-column distinct fanout) and cached in the plan, so the
//     runtime neither re-derives the greedy order per recursion level
//     nor probes every determined column's index to find the most
//     selective one — the probe column per step is precomputed.
//
// Plans are immutable, cached on the TGD itself (one atomic load to
// fetch), and shared by every engine and worker in the process. A
// mapping with more than 64 variables does not fit the bitmask and
// falls back to the interpreted engine, which remains intact both as
// that fallback and as the reference implementation the differential
// oracle checks the compiled runtime against.
package query

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// maxSlots is the slot runtime's variable budget: the bound-slot set
// is one uint64 bitmask.
const maxSlots = 64

// termDesc is one compiled argument position: an interned constant
// (slot < 0) or a variable slot.
type termDesc struct {
	slot int32
	cval model.Value
}

// planAtom is a compiled relational atom.
type planAtom struct {
	rel   string
	terms []termDesc
}

// varsMask returns the atom's variable slots as a bitmask.
func (a *planAtom) varsMask() uint64 {
	var m uint64
	for i := range a.terms {
		if s := a.terms[i].slot; s >= 0 {
			m |= uint64(1) << uint(s)
		}
	}
	return m
}

// joinOrder is the static evaluation order for one (side, seed shape):
// the atom visit sequence and, per step, the index column to probe
// (-1 = full-relation scan; the step has no determined position).
type joinOrder struct {
	seq   []int32
	probe []int32
}

// orderKey identifies a cached join order: which side of the mapping
// and which slots the seed binds.
type orderKey struct {
	rhs  bool
	mask uint64
}

// orderEntry is one cached (shape, order) pair; the plan keeps them in
// a copy-on-write slice behind an atomic pointer so the hit path is a
// short linear scan with no locking and — unlike a sync.Map keyed by a
// struct — no interface boxing, which would be one heap allocation per
// join.
type orderEntry struct {
	key orderKey
	ord *joinOrder
}

// Plan is a mapping compiled for the slot runtime. All fields are
// immutable after compilePlan; the order cache grows behind its own
// atomic pointer.
type Plan struct {
	t      *tgd.TGD
	ok     bool // slot runtime usable (≤ maxSlots variables)
	slots  []string
	slotOf map[string]int32
	lhs    []planAtom
	rhs    []planAtom

	lhsMask      uint64 // slots bound by a complete LHS match
	frontierMask uint64 // slots of the frontier variables
	rhsVarsMask  uint64 // slots any RHS atom can write

	ordersMu sync.Mutex
	orders   atomic.Pointer[[]orderEntry]
}

// Slots returns the plan's canonical variable order: LHS variables in
// first-occurrence order, then RHS-only variables. Bindings, keys and
// traces render in this order instead of sorting names per call.
func (p *Plan) Slots() []string { return p.slots }

// Compiled reports whether the mapping fits the slot runtime.
func (p *Plan) Compiled() bool { return p.ok }

// PlanFor returns the compiled plan for a mapping, compiling and
// publishing it on the TGD on first use.
func PlanFor(t *tgd.TGD) *Plan {
	if p, _ := t.CachedPlan().(*Plan); p != nil {
		obsPlanCacheHits.Inc()
		return p
	}
	p := compilePlan(t)
	obsPlansCompiled.Inc()
	if w, _ := t.PublishPlan(p).(*Plan); w != nil {
		return w
	}
	return p
}

// maskBelow returns a bitmask with the low n bits set.
func maskBelow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

func compilePlan(t *tgd.TGD) *Plan {
	p := &Plan{t: t, slotOf: make(map[string]int32)}
	slot := func(name string) int32 {
		if s, ok := p.slotOf[name]; ok {
			return s
		}
		s := int32(len(p.slots))
		p.slots = append(p.slots, name)
		p.slotOf[name] = s
		return s
	}
	compileSide := func(atoms []tgd.Atom) []planAtom {
		out := make([]planAtom, len(atoms))
		for i, a := range atoms {
			ts := make([]termDesc, len(a.Terms))
			for j, term := range a.Terms {
				if term.IsVar {
					ts[j] = termDesc{slot: slot(term.Var)}
				} else {
					ts[j] = termDesc{slot: -1, cval: model.Const(term.Const)}
				}
			}
			out[i] = planAtom{rel: a.Rel, terms: ts}
		}
		return out
	}
	p.lhs = compileSide(t.LHS)
	nLHS := len(p.slots)
	p.rhs = compileSide(t.RHS)
	p.ok = len(p.slots) <= maxSlots
	if p.ok {
		p.lhsMask = maskBelow(nLHS)
		for _, v := range t.FrontierVars() {
			p.frontierMask |= uint64(1) << uint(p.slotOf[v])
		}
		for i := range p.rhs {
			p.rhsVarsMask |= p.rhs[i].varsMask()
		}
	}
	return p
}

// orderFor returns the join order for (side, seed shape), computing it
// from the snapshot's cardinality stats on first use. The first
// computed order is published for the plan's lifetime and shared by
// every engine: any order enumerates the same homomorphism set, so
// which snapshot's statistics won the race affects speed only — and
// keeping it sticky means all workers enumerate identically.
func (p *Plan) orderFor(snap *storage.Snapshot, rhs bool, mask uint64) *joinOrder {
	key := orderKey{rhs: rhs, mask: mask}
	if cached := p.orders.Load(); cached != nil {
		for i := range *cached {
			if (*cached)[i].key == key {
				return (*cached)[i].ord
			}
		}
	}
	ord := p.computeOrder(snap, rhs, mask)
	p.ordersMu.Lock()
	defer p.ordersMu.Unlock()
	var cur []orderEntry
	if c := p.orders.Load(); c != nil {
		cur = *c
		for i := range cur {
			if cur[i].key == key { // lost the compute race
				return cur[i].ord
			}
		}
	}
	next := make([]orderEntry, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = orderEntry{key: key, ord: ord}
	p.orders.Store(&next)
	return ord
}

// computeOrder runs the greedy simulation the interpreted engine does
// per recursion level, once, statically: after an atom is placed, all
// its variables are bound, so the bound-slot evolution is fully
// determined by the seed shape. The greedy key is the interpreted
// engine's — most determined argument positions first — with the
// cardinality stats breaking ties by expected candidate count
// (Live / fanout of the best probe column) and atom index breaking
// exact ties, so plans on empty or statless databases degrade to the
// interpreted engine's order exactly.
func (p *Plan) computeOrder(snap *storage.Snapshot, rhs bool, mask uint64) *joinOrder {
	atoms := p.lhs
	if rhs {
		atoms = p.rhs
	}
	n := len(atoms)
	o := &joinOrder{seq: make([]int32, 0, n), probe: make([]int32, 0, n)}
	done := make([]bool, n)
	stats := make([]storage.RelStats, n)
	for i := range atoms {
		stats[i] = snap.RelStats(atoms[i].rel)
	}
	bound := mask
	for len(o.seq) < n {
		best := -1
		bestBound := -1
		bestCost := 0.0
		bestProbe := int32(-1)
		for i := range atoms {
			if done[i] {
				continue
			}
			bc, probe, cost := atomCost(&atoms[i], stats[i], bound)
			if bc > bestBound || (bc == bestBound && cost < bestCost) {
				best, bestBound, bestCost, bestProbe = i, bc, cost, probe
			}
		}
		done[best] = true
		o.seq = append(o.seq, int32(best))
		o.probe = append(o.probe, bestProbe)
		bound |= atoms[best].varsMask()
	}
	return o
}

// atomCost scores an atom under a bound-slot set: the number of
// determined argument positions, the probe column (the determined
// column with the highest distinct-value fanout — the smallest
// expected index bucket), and the expected candidate count.
func atomCost(a *planAtom, st storage.RelStats, bound uint64) (boundCount int, probe int32, cost float64) {
	probe = -1
	cost = float64(st.Live)
	bestFan := 0
	for ci := range a.terms {
		td := &a.terms[ci]
		if td.slot >= 0 && bound>>uint(td.slot)&1 == 0 {
			continue
		}
		boundCount++
		fan := 1
		if ci < len(st.Distinct) && st.Distinct[ci] > 1 {
			fan = st.Distinct[ci]
		}
		if fan > bestFan || probe < 0 {
			bestFan = fan
			probe = int32(ci)
			cost = float64(st.Live) / float64(fan)
		}
	}
	return boundCount, probe, cost
}

// seedMask converts an external seed binding into registers. ok is
// false when the binding names a variable outside the plan's slot
// table (a caller-carried foreign variable the register file cannot
// represent) — the engine then falls back to the interpreted path.
func (p *Plan) seedMask(seed Binding, regs []model.Value) (uint64, bool) {
	var mask uint64
	for name, val := range seed {
		s, ok := p.slotOf[name]
		if !ok {
			return 0, false
		}
		regs[s] = val
		mask |= uint64(1) << uint(s)
	}
	return mask, true
}

// unifyRegs matches a written tuple's values against a compiled atom,
// binding slots into regs starting from an empty mask — the compiled
// form of unifyValsAtom for the §4.2 seeded violation queries.
func unifyRegs(vals []model.Value, a *planAtom, regs []model.Value) (uint64, bool) {
	if len(vals) != len(a.terms) {
		return 0, false
	}
	var mask uint64
	for i := range a.terms {
		td := &a.terms[i]
		v := vals[i]
		if td.slot < 0 {
			if v != td.cval {
				return 0, false
			}
			continue
		}
		if mask>>uint(td.slot)&1 == 1 {
			if regs[td.slot] != v {
				return 0, false
			}
			continue
		}
		regs[td.slot] = v
		mask |= uint64(1) << uint(td.slot)
	}
	return mask, true
}

// bindingFromRegs materializes a Binding map from the register file —
// only at result boundaries (an actual match or violation), never
// inside the join loop.
func (p *Plan) bindingFromRegs(regs []model.Value, bound uint64) Binding {
	b := make(Binding, bits.OnesCount64(bound))
	for s, name := range p.slots {
		if bound>>uint(s)&1 == 1 {
			b[name] = regs[s]
		}
	}
	return b
}
