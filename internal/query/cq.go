package query

import (
	"fmt"
	"sort"
	"strings"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// This file implements the query side of Youtopia (§1.2 of the paper):
// conjunctive queries over a repository whose data is incomplete
// (labeled nulls) and possibly inconsistent, under two semantics —
//
//   - a certain semantics "that guarantees correctness while
//     potentially omitting some results": the classical certain
//     answers of a conjunctive query over a naive table, computed by
//     naive evaluation (nulls join like ordinary values) followed by
//     dropping rows that still contain nulls; and
//
//   - a best-effort semantics "that includes all potentially relevant
//     results at the risk of some incorrectness": evaluation in which
//     a labeled null may additionally unify with any constant (or
//     other null), consistently within each result row — every answer
//     that holds in at least one completion of the nulls reachable by
//     per-row unification.

// CQ is a conjunctive query: distinguished head variables over a body
// of relational atoms, written q(x, y) <- A(x, z), T(z, y).
type CQ struct {
	Name string
	Head []string
	Body []tgd.Atom
}

// Validate checks the query against a schema: body atoms must match
// declared relations and arities, and every head variable must occur
// in the body (safety).
func (q *CQ) Validate(schema *model.Schema) error {
	if q.Name == "" {
		return fmt.Errorf("query: unnamed query")
	}
	if len(q.Body) == 0 {
		return fmt.Errorf("query %s: empty body", q.Name)
	}
	bodyVars := make(map[string]bool)
	for _, a := range q.Body {
		ar := schema.Arity(a.Rel)
		if ar < 0 {
			return fmt.Errorf("query %s: undeclared relation %s", q.Name, a.Rel)
		}
		if ar != len(a.Terms) {
			return fmt.Errorf("query %s: atom %s has arity %d, relation %s has arity %d",
				q.Name, a, len(a.Terms), a.Rel, ar)
		}
		for _, v := range a.Vars() {
			bodyVars[v] = true
		}
	}
	seen := make(map[string]bool)
	for _, h := range q.Head {
		if !bodyVars[h] {
			return fmt.Errorf("query %s: head variable %s does not occur in the body", q.Name, h)
		}
		if seen[h] {
			return fmt.Errorf("query %s: head variable %s repeated", q.Name, h)
		}
		seen[h] = true
	}
	return nil
}

// String renders the query, e.g. q(x, y) <- A(x, z), T(z, y).
func (q *CQ) String() string {
	atoms := make([]string, len(q.Body))
	for i, a := range q.Body {
		atoms[i] = a.String()
	}
	return fmt.Sprintf("%s(%s) <- %s", q.Name, strings.Join(q.Head, ", "),
		strings.Join(atoms, ", "))
}

// project builds the answer row for a binding.
func (q *CQ) project(b Binding) model.Tuple {
	vals := make([]model.Value, len(q.Head))
	for i, h := range q.Head {
		vals[i] = b[h]
	}
	return model.Tuple{Rel: q.Name, Vals: vals}
}

// dedupSort removes duplicate rows and orders them canonically.
func dedupSort(rows []model.Tuple) []model.Tuple {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// CertainAnswers returns the certain answers of the query on the
// engine's snapshot: rows of constants that hold under every valuation
// of the labeled nulls. For conjunctive queries these are exactly the
// null-free rows of the naive evaluation.
func (e *Engine) CertainAnswers(q *CQ) []model.Tuple {
	var rows []model.Tuple
	e.joinAtoms(q.Body, Binding{}, func(b Binding, _ []storage.TupleID) bool {
		row := q.project(b)
		if row.IsGround() {
			rows = append(rows, row)
		}
		return true
	})
	return dedupSort(rows)
}

// BestEffortAnswers returns the best-effort answers: every row
// derivable when labeled nulls are allowed to unify — consistently
// within the row — with constants and with each other. Rows may
// contain nulls (facts known to exist with unknown values) and may be
// incorrect in completions that resolve the nulls differently.
func (e *Engine) BestEffortAnswers(q *CQ) []model.Tuple {
	var rows []model.Tuple
	e.joinAtomsUnifying(q.Body, func(b Binding, sub model.Subst) bool {
		row := q.project(b)
		row = model.Tuple{Rel: row.Rel, Vals: sub.Apply(row.Vals)}
		rows = append(rows, row)
		return true
	})
	return dedupSort(rows)
}

// joinAtomsUnifying enumerates matches of the atom conjunction under
// unification semantics: a database null may match any query constant
// or other value, with all identifications collected in a per-match
// substitution. fn receives the binding and the substitution; both are
// private copies.
func (e *Engine) joinAtomsUnifying(atoms []tgd.Atom, fn func(Binding, model.Subst) bool) bool {
	n := len(atoms)
	done := make([]bool, n)
	scratch := Binding{}
	sub := model.Subst{}

	// resolve follows the substitution chain to a representative.
	resolve := func(v model.Value) model.Value {
		for v.IsNull() {
			next, ok := sub[v]
			if !ok {
				return v
			}
			v = next
		}
		return v
	}
	// unite makes two values equal under the substitution, preferring
	// constants as representatives. It returns an undo closure, or nil
	// when impossible.
	unite := func(a, b model.Value) func() {
		ra, rb := resolve(a), resolve(b)
		if ra == rb {
			return func() {}
		}
		switch {
		case ra.IsNull():
			sub[ra] = rb
			return func() { delete(sub, ra) }
		case rb.IsNull():
			sub[rb] = ra
			return func() { delete(sub, rb) }
		default:
			return nil // two distinct constants
		}
	}

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			// Copy binding with the substitution applied and a frozen
			// copy of the substitution itself.
			outB := make(Binding, len(scratch))
			for k, v := range scratch {
				outB[k] = resolve(v)
			}
			outS := make(model.Subst, len(sub))
			for k, v := range sub {
				outS[k] = resolve(v)
			}
			return fn(outB, outS)
		}
		best := -1
		bestBound := -1
		for i, a := range atoms {
			if done[i] {
				continue
			}
			if bc := boundTermCount(a, scratch); bc > bestBound {
				best, bestBound = i, bc
			}
		}
		a := atoms[best]
		done[best] = true
		defer func() { done[best] = false }()
		// Unification can cross constants, so index narrowing by bound
		// constants would be unsound (a null in that column matches
		// too); scan the relation.
		for _, id := range e.snap.RelIDs(a.Rel) {
			vals, ok := e.snap.Get(id)
			if !ok {
				continue
			}
			var undos []func()
			var added []string
			ok = true
			for i, term := range a.Terms {
				v := vals[i]
				var want model.Value
				if term.IsVar {
					bound, isBound := scratch[term.Var]
					if !isBound {
						scratch[term.Var] = v
						added = append(added, term.Var)
						continue
					}
					want = bound
				} else {
					want = model.Const(term.Const)
				}
				u := unite(want, v)
				if u == nil {
					ok = false
					break
				}
				undos = append(undos, u)
			}
			if ok {
				if !rec(remaining - 1) {
					for i := len(undos) - 1; i >= 0; i-- {
						undos[i]()
					}
					undoBinds(scratch, added)
					return false
				}
			}
			for i := len(undos) - 1; i >= 0; i-- {
				undos[i]()
			}
			undoBinds(scratch, added)
		}
		return true
	}
	return rec(n)
}
