package query

import (
	"sort"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
)

// TestEngineOnEpochSnapshot runs the violation-discovery engine over a
// wait-free epoch snapshot and asserts it sees exactly the committed
// state a locked committed-reader snapshot sees: the same violations
// (by canonical witness signature), with uncommitted writers' tuples
// invisible. Epoch snapshots feed read-heavy consumers (checkpointer,
// the multicore study's reader goroutines), so the query layer has to
// produce identical answers over them.
func TestEngineOnEpochSnapshot(t *testing.T) {
	st, set := fig2(t)

	// A committed violating insert (Example 1.1's tuple, committed this
	// time) and an uncommitted insert that would violate sigma1.
	if _, _, ins, err := st.Insert(1, tup("T", c("Niagara Falls"), c("ABC Tours"), n(5))); err != nil || !ins {
		t.Fatalf("insert: %v %v", ins, err)
	}
	if err := st.CommitBatch([]int{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, ins, err := st.Insert(2, tup("C", c("Rochester"))); err != nil || !ins {
		t.Fatalf("uncommitted insert: %v %v", ins, err)
	}

	sigs := func(e *Engine) []string {
		vs := e.AllViolations(set)
		out := make([]string, len(vs))
		for i := range vs {
			out[i] = e.WitnessSig(&vs[i])
		}
		sort.Strings(out)
		return out
	}
	// Reads are priority-windowed: Snap(r) is the state as of update r,
	// so reader 1 is the locked oracle for the committed instance here
	// (writer 2's tuple is above its window and uncommitted besides).
	committed := engineAt(st, 1)
	epoch := NewEngine(st.EpochSnap())

	want := sigs(committed)
	if len(want) == 0 {
		t.Fatal("committed reader must see the sigma3 violation")
	}
	got := sigs(epoch)
	if len(got) != len(want) {
		t.Fatalf("epoch engine violations = %v, committed reader = %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epoch engine violations = %v, committed reader = %v", got, want)
		}
	}

	// Writer 2's tuple is live to its own engine, absent from the epoch.
	if vs := engineAt(st, 2).AllViolations(set); len(vs) <= len(want) {
		t.Fatalf("writer 2 must also see its own sigma1 violation, got %v", vs)
	}
	if n := epoch.Snapshot().CountRel("C"); n != 2 {
		t.Fatalf("epoch C count = %d, want the 2 committed cities", n)
	}

	// The sharded backend's assembled epoch answers identically.
	sharded := storage.NewSharded(st.Schema(), 3)
	for _, rel := range st.Schema().SortedNames() {
		st.EpochSnap().ScanRel(rel, func(id storage.TupleID, vals []model.Value) bool {
			if _, err := sharded.Load(model.NewTuple(rel, vals...)); err != nil {
				t.Fatal(err)
			}
			return true
		})
	}
	got = sigs(NewEngine(sharded.EpochSnap()))
	if len(got) != len(want) {
		t.Fatalf("sharded epoch engine violations = %v, want %v", got, want)
	}
}
