// The slot runtime: executes compiled plans (plan.go) against a
// snapshot. The register file replaces the interpreted engine's
// binding maps — a slot write is one slice store plus one bitmask OR,
// and undoing a failed extension is dropping the local mask copy; no
// undo lists, no map deletes, no string hashing. Candidate narrowing
// probes exactly the one precomputed index column per join step.
package query

import (
	"math/bits"

	"youtopia/internal/model"
	"youtopia/internal/storage"
)

// slotRun is one in-flight compiled join: a plan side's atoms in their
// static order, the register file, and the callback state. Runs are
// pooled on the engine; callbacks are package-level functions wired
// into the fn field (never closures), so a steady-state evaluation
// that finds nothing performs zero heap allocations.
type slotRun struct {
	e       *Engine
	p       *Plan
	atoms   []planAtom
	ord     *joinOrder
	regs    []model.Value
	save    []model.Value
	witness []storage.TupleID

	// fn receives each complete match; returning false stops the
	// enumeration.
	fn func(r *slotRun, bound uint64) bool

	// Callback state, valid for one evaluation:
	found  bool     // srExists / srFirstViolation output
	dedup  bool     // srViolation: dedup through e.seen
	rhsRun *slotRun // nested RHS existence probe, sharing regs
	vout   *[]Violation
	mout   *[]Match
}

// getRun pops a pooled run shaped for the plan; witness and register
// slices are reused across evaluations.
func (e *Engine) getRun(p *Plan) *slotRun {
	var r *slotRun
	if k := len(e.runPool); k > 0 {
		r = e.runPool[k-1]
		e.runPool = e.runPool[:k-1]
	} else {
		r = &slotRun{}
	}
	r.e = e
	r.p = p
	if cap(r.regs) < len(p.slots) {
		r.regs = make([]model.Value, len(p.slots))
	}
	r.regs = r.regs[:len(p.slots)]
	if cap(r.save) < len(p.slots) {
		r.save = make([]model.Value, len(p.slots))
	}
	r.save = r.save[:len(p.slots)]
	n := len(p.lhs)
	if len(p.rhs) > n {
		n = len(p.rhs)
	}
	if cap(r.witness) < n {
		r.witness = make([]storage.TupleID, n)
	}
	return r
}

// putRun returns a run to the pool, dropping callback state.
func (e *Engine) putRun(r *slotRun) {
	r.fn = nil
	r.rhsRun = nil
	r.vout = nil
	r.mout = nil
	e.runPool = append(e.runPool, r)
}

// side selects the run's atom list and static order for a seed shape.
func (r *slotRun) side(rhs bool, mask uint64) {
	if rhs {
		r.atoms = r.p.rhs
	} else {
		r.atoms = r.p.lhs
	}
	r.witness = r.witness[:len(r.atoms)]
	r.ord = r.p.orderFor(r.e.snap, rhs, mask)
}

// rec enumerates matches of the remaining atoms. bound travels by
// value: a failed extension or an exhausted branch abandons its mask
// copy and the registers it wrote become unreachable garbage — the
// slot runtime's whole undo mechanism.
func (r *slotRun) rec(level int, bound uint64) bool {
	if level == len(r.ord.seq) {
		return r.fn(r, bound)
	}
	ai := r.ord.seq[level]
	a := &r.atoms[ai]
	snap := r.e.snap
	var cands []storage.TupleID
	if pc := r.ord.probe[level]; pc >= 0 {
		td := &a.terms[pc]
		pv := td.cval
		if td.slot >= 0 {
			pv = r.regs[td.slot]
		}
		cands = snap.CandidatesByValue(a.rel, int(pc), pv)
		r.e.pendProbes++
	} else {
		cands = snap.RelIDs(a.rel)
	}
	r.e.pendSteps += int64(len(cands))
	for _, id := range cands {
		vals, ok := snap.Get(id)
		if !ok || len(vals) != len(a.terms) {
			continue
		}
		nb := bound
		match := true
		for ci := range a.terms {
			td := &a.terms[ci]
			v := vals[ci]
			if td.slot < 0 {
				if v != td.cval {
					match = false
					break
				}
			} else if nb>>uint(td.slot)&1 == 1 {
				if r.regs[td.slot] != v {
					match = false
					break
				}
			} else {
				r.regs[td.slot] = v
				nb |= uint64(1) << uint(td.slot)
			}
		}
		if !match {
			continue
		}
		r.witness[ai] = id
		if !r.rec(level+1, nb) {
			return false
		}
	}
	return true
}

// srExists flags that the side has at least one complete match.
func srExists(r *slotRun, _ uint64) bool {
	r.found = true
	return false
}

// srCollectMatch materializes a Match from the registers.
func srCollectMatch(r *slotRun, bound uint64) bool {
	*r.mout = append(*r.mout, Match{
		Binding: r.p.bindingFromRegs(r.regs, bound),
		Witness: append([]storage.TupleID(nil), r.witness...),
	})
	return true
}

// rhsHolds runs the nested RHS existence probe for a complete LHS
// match. The nested run shares the parent's register file: the
// frontier slots are bound, the existential slots bind freely, and
// what the probe wrote is usually dead the moment it returns because
// the parent's mask never includes it — the compiled replacement for
// Restrict-to-frontier plus a fresh binding map. The exception is a
// seed that binds an existential variable: the parent's mask covers
// that slot but (matching the interpreted Restrict-to-frontier
// semantics) the probe must not be constrained by it and may overwrite
// it, so those registers are saved around the probe and restored
// before the parent renders its binding or dedup key.
func rhsHolds(r *slotRun, bound uint64) bool {
	rr := r.rhsRun
	rr.found = false
	clob := bound & r.p.rhsVarsMask &^ r.p.frontierMask
	for m := clob; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		r.save[s] = r.regs[s]
	}
	rr.rec(0, bound&r.p.frontierMask)
	for m := clob; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		r.regs[s] = r.save[s]
	}
	return rr.found
}

// srViolation is the seeded violation query's match callback: a
// complete LHS match with no RHS support is a violation. The dedup
// key is rendered into the engine's reusable buffer and checked
// against the seen set without allocating; only a genuinely new
// violation materializes a Binding, witness copy, and key string.
func srViolation(r *slotRun, bound uint64) bool {
	if rhsHolds(r, bound) {
		return true
	}
	e := r.e
	if r.dedup {
		e.keyBuf = appendKeyParts(e.keyBuf[:0], r.p, r.witness, func(dst []byte) []byte {
			return appendBindingSlots(dst, r.p, r.regs, bound)
		})
		if e.seen[string(e.keyBuf)] {
			return true
		}
		if e.seen == nil {
			e.seen = make(map[string]bool)
		}
		e.seen[string(e.keyBuf)] = true
	}
	*r.vout = append(*r.vout, Violation{
		TGD:     r.p.t,
		Binding: r.p.bindingFromRegs(r.regs, bound),
		Witness: append([]storage.TupleID(nil), r.witness...),
	})
	return true
}

// srFirstViolation stops the enumeration at the first violation; the
// compiled core of Satisfied.
func srFirstViolation(r *slotRun, bound uint64) bool {
	if rhsHolds(r, bound) {
		return true
	}
	r.found = true
	return false
}

// appendBindingSlots renders the bound registers in canonical slot
// order — the same bytes Violation.appendKey produces from the
// materialized Binding map, computed here without building the map.
func appendBindingSlots(dst []byte, p *Plan, regs []model.Value, bound uint64) []byte {
	dst = append(dst, '{')
	first := true
	for s, name := range p.slots {
		if bound>>uint(s)&1 == 0 {
			continue
		}
		if !first {
			dst = append(dst, ", "...)
		}
		first = false
		dst = append(dst, name...)
		dst = append(dst, "->"...)
		dst = appendValue(dst, regs[s])
	}
	return append(dst, '}')
}
