package query

import (
	"fmt"
	"strings"
	"testing"

	"youtopia/internal/model"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
)

// TestPlanSlotAssignment pins the canonical slot order: LHS variables
// in first-occurrence order, then RHS-only (existential) variables,
// with constants compiled to interned values instead of slots.
func TestPlanSlotAssignment(t *testing.T) {
	m := tgd.New("p",
		[]tgd.Atom{
			tgd.NewAtom("A", tgd.V("b"), tgd.V("a"), tgd.C("k")),
			tgd.NewAtom("B", tgd.V("a"), tgd.V("c")),
		},
		[]tgd.Atom{tgd.NewAtom("R", tgd.V("c"), tgd.V("z"))})
	p := PlanFor(m)
	if !p.Compiled() {
		t.Fatal("plan must compile")
	}
	want := []string{"b", "a", "c", "z"}
	if got := p.Slots(); len(got) != len(want) {
		t.Fatalf("slots = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slots = %v, want %v", got, want)
			}
		}
	}
	// b, a, c are LHS slots; c is the only frontier variable.
	if p.lhsMask != 0b0111 {
		t.Fatalf("lhsMask = %b, want 0111", p.lhsMask)
	}
	if p.frontierMask != 0b0100 {
		t.Fatalf("frontierMask = %b, want 0100", p.frontierMask)
	}
	// The constant position carries the interned value, not a slot.
	kd := p.lhs[0].terms[2]
	if kd.slot >= 0 || kd.cval != model.Const("k") {
		t.Fatalf("constant term compiled to %+v", kd)
	}
}

// TestPlanCachedOnTGD checks that compilation happens once per mapping
// and the plan is shared by every engine in the process.
func TestPlanCachedOnTGD(t *testing.T) {
	m := tgd.New("cache",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x"))},
		[]tgd.Atom{tgd.NewAtom("B", tgd.V("x"))})
	p1 := PlanFor(m)
	p2 := PlanFor(m)
	if p1 != p2 {
		t.Fatal("PlanFor recompiled a cached mapping")
	}
}

// TestPlanTooManyVars: a mapping with more variables than the bound
// bitmask holds must refuse the slot runtime and still answer
// correctly through the interpreted fallback.
func TestPlanTooManyVars(t *testing.T) {
	terms := make([]tgd.Term, 65)
	fields := make([]string, 65)
	for i := range terms {
		terms[i] = tgd.V(fmt.Sprintf("v%d", i))
		fields[i] = fmt.Sprintf("f%d", i)
	}
	m := tgd.New("wide",
		[]tgd.Atom{tgd.NewAtom("Wide", terms...)},
		[]tgd.Atom{tgd.NewAtom("Out", terms[0])})
	p := PlanFor(m)
	if p.Compiled() {
		t.Fatal("65-variable mapping must not compile")
	}

	s := model.NewSchema()
	s.MustAddRelation("Wide", fields...)
	s.MustAddRelation("Out", "x")
	st := storage.NewStore(s)
	vals := make([]model.Value, 65)
	for i := range vals {
		vals[i] = c(fmt.Sprintf("c%d", i))
	}
	st.Load(model.NewTuple("Wide", vals...))
	e := NewEngine(st.Snap(1))
	vs := e.Violations(m, Binding{})
	if len(vs) != 1 {
		t.Fatalf("fallback path found %d violations, want 1", len(vs))
	}
}

// TestOrderCachedPerShape: each seed shape computes its order once and
// every later evaluation — on any engine — reuses the same object.
func TestOrderCachedPerShape(t *testing.T) {
	st, m := benchWorld(&testing.B{}, 100)
	p := PlanFor(m)
	snap := st.Snap(1)
	o1 := p.orderFor(snap, false, 0b01)
	o2 := p.orderFor(snap, false, 0b01)
	if o1 != o2 {
		t.Fatal("same shape recomputed its order")
	}
	o3 := p.orderFor(snap, false, 0b10)
	if o3 == o1 {
		t.Fatal("distinct shapes share an order object")
	}
}

// TestOrderPrefersSelectiveAtom: with equal bound-variable counts, the
// cardinality stats must break the tie toward the atom with the
// smaller expected candidate set, and the probe column must be the
// determined column with the highest distinct-value fanout.
func TestOrderPrefersSelectiveAtom(t *testing.T) {
	s := model.NewSchema()
	s.MustAddRelation("Big", "x", "w")
	s.MustAddRelation("Small", "x", "v")
	st := storage.NewStore(s)
	for i := 0; i < 200; i++ {
		st.Load(model.NewTuple("Big", c(fmt.Sprintf("x%d", i%4)), c(fmt.Sprintf("w%d", i))))
	}
	for i := 0; i < 8; i++ {
		st.Load(model.NewTuple("Small", c(fmt.Sprintf("x%d", i%4)), c(fmt.Sprintf("v%d", i))))
	}
	m := tgd.New("sel",
		[]tgd.Atom{
			tgd.NewAtom("Big", tgd.V("x"), tgd.V("w")),
			tgd.NewAtom("Small", tgd.V("x"), tgd.V("v")),
		},
		[]tgd.Atom{tgd.NewAtom("Out", tgd.V("w"), tgd.V("v"))})
	p := PlanFor(m)
	// Seed binds x (slot 0): both atoms have one determined column, so
	// the expected candidate count decides — Small (8/4 = 2 rows per
	// bucket) before Big (200/4 = 50).
	ord := p.orderFor(st.Snap(1), false, 0b001)
	if ord.seq[0] != 1 || ord.seq[1] != 0 {
		t.Fatalf("order = %v, want Small (atom 1) first", ord.seq)
	}
	// Both steps probe column 0, the only determined position.
	if ord.probe[0] != 0 || ord.probe[1] != 0 {
		t.Fatalf("probe columns = %v, want [0 0]", ord.probe)
	}
}

// TestSeedMaskForeignVar: a seed binding naming a variable the mapping
// does not mention cannot enter the register file.
func TestSeedMaskForeignVar(t *testing.T) {
	m := tgd.New("f",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("x"))},
		[]tgd.Atom{tgd.NewAtom("B", tgd.V("x"))})
	p := PlanFor(m)
	regs := make([]model.Value, len(p.Slots()))
	if _, ok := p.seedMask(Binding{"nope": c("v")}, regs); ok {
		t.Fatal("foreign variable accepted into the register file")
	}
	mask, ok := p.seedMask(Binding{"x": c("v")}, regs)
	if !ok || mask != 1 || regs[0] != c("v") {
		t.Fatalf("seedMask = (%b, %v), regs[0] = %v", mask, ok, regs[0])
	}
}

// TestViolationRenderSlotOrder (satellite: Binding.String re-sorting
// fix): violation keys and strings render variables in the plan's slot
// order — LHS first-occurrence — not re-sorted alphabetically per call.
func TestViolationRenderSlotOrder(t *testing.T) {
	s := model.NewSchema()
	s.MustAddRelation("A", "p", "q")
	s.MustAddRelation("B", "p")
	st := storage.NewStore(s)
	st.Load(model.NewTuple("A", c("1"), c("2")))
	// Variable names chosen so sorted order (b1, z0) differs from slot
	// order (z0, b1).
	m := tgd.New("ord",
		[]tgd.Atom{tgd.NewAtom("A", tgd.V("z0"), tgd.V("b1"))},
		[]tgd.Atom{tgd.NewAtom("B", tgd.V("z0"))})
	e := NewEngine(st.Snap(1))
	vs := e.Violations(m, Binding{})
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	str := vs[0].String()
	if !strings.Contains(str, "{z0->1, b1->2}") {
		t.Fatalf("violation string %q not in slot order", str)
	}
	if key := vs[0].Key(); !strings.Contains(key, "{z0->1, b1->2}") {
		t.Fatalf("violation key %q not in slot order", key)
	}
	// Plan-less diagnostics keep the sorted rendering.
	if got := vs[0].Binding.String(); got != "{b1->2, z0->1}" {
		t.Fatalf("Binding.String = %q, want sorted order", got)
	}
}

// TestSigAndKeyBuildersAllocFree pins the pooled builders behind
// Violation.Key and Engine.WitnessSig: rendering into a warmed buffer
// allocates nothing, so the only steady-state cost of keys and
// signatures is the final string the caller keeps.
func TestSigAndKeyBuildersAllocFree(t *testing.T) {
	st, m := benchWorld(&testing.B{}, 100)
	e := NewEngine(st.Snap(1))
	vs := e.Violations(m, Binding{"x": c("a1")})
	if len(vs) == 0 {
		t.Fatal("need a violation to render")
	}
	v := &vs[0]
	e.WitnessSig(v) // warm sigBuf and renBuf
	buf := v.appendKey(nil)
	got := testing.AllocsPerRun(200, func() {
		e.sigBuf = e.appendWitnessSig(e.sigBuf[:0], v)
	})
	if got != 0 {
		t.Fatalf("appendWitnessSig allocates %.1f times per op, want 0", got)
	}
	got = testing.AllocsPerRun(200, func() {
		buf = v.appendKey(buf[:0])
	})
	if got != 0 {
		t.Fatalf("appendKey allocates %.1f times per op, want 0", got)
	}
}
