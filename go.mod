module youtopia

go 1.24
