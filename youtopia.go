// Package youtopia is a Go implementation of the cooperative update
// exchange system of Kot and Koch, "Cooperative Update Exchange in the
// Youtopia System" (VLDB 2009).
//
// A repository is a set of relations connected by mappings
// (tuple-generating dependencies). User operations — tuple insertion,
// tuple deletion, and null-replacement — propagate through the
// mappings by a cooperative chase: deterministic repairs happen
// automatically, while ambiguous ones stop at frontier tuples that a
// user resolves with simple operations (expand, unify, delete a
// subset). Mapping cycles are permitted; nontermination is controlled
// rather than forbidden.
//
// Concurrent updates run under optimistic multiversion concurrency
// control: every chase step's reads are recorded, writes by
// higher-priority updates are checked against them, and conflicting
// updates abort and restart, with cascading aborts determined by the
// NAIVE, COARSE or PRECISE dependency algorithms of the paper.
// Workloads execute either on the cooperative single-goroutine
// interleaver of the paper's experiments or, with
// SchedulerConfig.Workers >= 1, on a pool of worker goroutines that
// chase independent updates truly in parallel over the
// concurrency-safe store.
//
// Quick start:
//
//	repo, _, err := youtopia.Open(`
//	    relation C(city)
//	    relation S(code, location, city_served)
//	    mapping sigma1: C(c) -> exists a, l: S(a, l, c)
//	    mapping sigma2: S(a, l, c) -> C(l), C(c)
//	    tuple C("Ithaca")
//	    tuple S("SYR", "Syracuse", "Ithaca")
//	`)
//	if err != nil { ... }
//	stats, err := repo.Apply(
//	    youtopia.Insert(youtopia.NewTuple("C", youtopia.Const("Boston"))),
//	    youtopia.RandomUser(42))
//
// The examples/ directory contains complete programs: the paper's
// Figure 2 travel repository, the cyclic genealogy scenario of §2.2,
// and a concurrent workload comparing the abort algorithms.
package youtopia

import (
	"youtopia/internal/cc"
	"youtopia/internal/chase"
	"youtopia/internal/core"
	"youtopia/internal/inbox"
	"youtopia/internal/model"
	"youtopia/internal/parse"
	"youtopia/internal/query"
	"youtopia/internal/simuser"
	"youtopia/internal/storage"
	"youtopia/internal/tgd"
	"youtopia/internal/wal"
)

// Core data model.
type (
	// Value is an attribute value: a constant or a labeled null.
	Value = model.Value
	// Tuple is a row of a relation.
	Tuple = model.Tuple
	// Schema is the set of declared relations.
	Schema = model.Schema
	// TGD is a mapping (tuple-generating dependency).
	TGD = tgd.TGD
	// MappingSet is an ordered collection of mappings.
	MappingSet = tgd.Set
)

// Repository is a Youtopia repository; see package core.
type Repository = core.Repository

// CQ is a conjunctive query over the repository, evaluated under the
// certain or best-effort semantics (§1.2 of the paper).
type CQ = query.CQ

// Update-exchange surface.
type (
	// Op is a database operation: the initial operation of an update.
	Op = chase.Op
	// Update is a running update (Definition 2.6 of the paper).
	Update = chase.Update
	// FrontierGroup is a set of frontier tuples awaiting a user.
	FrontierGroup = chase.FrontierGroup
	// Decision is a frontier operation.
	Decision = chase.Decision
	// User supplies frontier operations for blocked updates.
	User = chase.User
	// UserFunc adapts a function to the User interface.
	UserFunc = chase.UserFunc
	// Stats summarizes one update's chase.
	Stats = chase.Stats
)

// Concurrency control surface.
type (
	// Tracker determines cascading aborts (NAIVE, COARSE, PRECISE).
	Tracker = cc.Tracker
	// SchedulerConfig parameterizes concurrent execution. Setting its
	// Workers field to 1 or more makes Repository.RunConcurrent execute
	// the workload on that many goroutines (cc.ParallelScheduler)
	// instead of the cooperative single-goroutine interleaver; the
	// committed final instance is serializable either way.
	SchedulerConfig = cc.Config
	// Metrics reports a concurrent run's outcome.
	Metrics = cc.Metrics
	// WriteRec describes one performed write.
	WriteRec = storage.WriteRec
)

// Frontier operation kinds (§2.2, §2.3).
const (
	// DecideExpand inserts a positive frontier tuple.
	DecideExpand = chase.DecideExpand
	// DecideUnify collapses a positive frontier tuple onto a more
	// specific existing tuple.
	DecideUnify = chase.DecideUnify
	// DecideDelete removes a subset of a negative frontier group.
	DecideDelete = chase.DecideDelete
	// DecideReconfirm protects a subset of a negative frontier group.
	DecideReconfirm = chase.DecideReconfirm
)

// Const returns a constant value.
func Const(s string) Value { return model.Const(s) }

// NullValue returns the labeled null with the given identifier. Fresh
// nulls should normally come from Repository.FreshNull.
func NullValue(id int64) Value { return model.Null(id) }

// NewTuple builds a tuple.
func NewTuple(rel string, vals ...Value) Tuple { return model.NewTuple(rel, vals...) }

// NewSchema returns an empty schema.
func NewSchema() *Schema { return model.NewSchema() }

// Insert returns an insert operation.
func Insert(t Tuple) Op { return chase.Insert(t) }

// Delete returns a delete operation (removes the fact).
func Delete(t Tuple) Op { return chase.Delete(t) }

// ReplaceNull returns a null-replacement operation: every occurrence
// of the labeled null x becomes the value with.
func ReplaceNull(x, with Value) Op { return chase.ReplaceNull(x, with) }

// Durability surface. A repository opened with a non-empty
// Options.DataDir keeps a segmented, CRC-checked write-ahead log plus
// periodic checkpoints under that directory: every commit batch is
// appended and synced before it takes effect (the group-commit
// frontier makes that one fsync for a whole batch of updates), and
// reopening the directory recovers the committed instance exactly —
// a crash at any point loses at most un-committed work, never part of
// a committed batch. Options.Shards additionally partitions the
// relations across that many independent store shards, each with its
// own stripe set, group-commit frontier, and (durable) write-ahead
// log under DataDir/shard-<k>; a data directory remembers its shard
// count. One qualification on sharded durability: a commit batch
// spanning several shards is appended to their logs one shard at a
// time, so a crash between those appends recovers the batch
// per-shard-prefix — each shard is exactly consistent with its own
// log, but the batch is not all-or-nothing across shards (the
// acknowledgment, which is what callers may rely on, still only
// resolves once every involved shard is durable). Call
// Repository.Close when done with a durable repository.
type (
	// Options selects how a repository is backed; the zero value is
	// the in-memory default.
	Options = core.Options
	// SyncPolicy selects when the write-ahead log is fsynced.
	SyncPolicy = wal.SyncPolicy
	// RecoveryInfo reports what opening a durable repository recovered.
	RecoveryInfo = wal.RecoveryInfo
)

const (
	// SyncAlways fsyncs once per commit batch (the durable default).
	SyncAlways = wal.SyncAlways
	// SyncNever leaves flushing to the OS: faster, and a crash may
	// lose recent commit batches but never tears one.
	SyncNever = wal.SyncNever
)

// Failure surface. A transient I/O failure on the log is retried with
// capped exponential backoff and never surfaces to callers; a failure
// that persists (or ENOSPC) degrades the repository to read-only —
// reads and inbox listing keep serving, new updates are rejected with
// ErrReadOnly until Repository.Resume proves the write path works
// again (disk-full degradations also re-arm automatically once space
// returns). Only failures that leave the log in an unknowable state
// poison it, which is terminal until the directory is reopened.
type (
	// Health is a snapshot of the durable backing's failure state
	// (Repository.Health; the zero value is healthy).
	Health = wal.Health
	// State is the repository health state: StateHealthy,
	// StateDegraded (read-only), or StatePoisoned.
	State = wal.State
)

const (
	// StateHealthy accepts updates; the log is at full function.
	StateHealthy = wal.StateHealthy
	// StateDegraded is read-only after a persistent I/O failure;
	// Resume re-arms it.
	StateDegraded = wal.StateDegraded
	// StatePoisoned is terminal: reopen the data directory to recover
	// the durable prefix.
	StatePoisoned = wal.StatePoisoned
)

// Failure sentinels, matched with errors.Is against rejected updates.
var (
	// ErrReadOnly marks updates rejected while the log is degraded.
	ErrReadOnly = wal.ErrReadOnly
	// ErrPoisoned marks updates rejected after the log poisoned.
	ErrPoisoned = wal.ErrPoisoned
	// ErrRetrying marks operations bounced while a transient-failure
	// retry is in flight (callers may simply retry).
	ErrRetrying = wal.ErrRetrying
)

// New creates an in-memory repository from a schema and mappings.
func New(schema *Schema, mappings *MappingSet) (*Repository, error) {
	return core.New(schema, mappings)
}

// NewWithOptions is New with a backing selection (Options.DataDir
// enables the write-ahead log).
func NewWithOptions(schema *Schema, mappings *MappingSet, opts Options) (*Repository, error) {
	return core.NewWithOptions(schema, mappings, opts)
}

// Open parses a repository definition in the textual repository
// language (see internal/parse) and returns the repository plus any
// update operations the document contains.
func Open(source string) (*Repository, []Op, error) {
	return core.Open(source)
}

// OpenWithOptions is Open with a backing selection: on a fresh
// DataDir the document's tuples bootstrap the committed instance;
// once the directory holds durable state, that state alone is
// recovered and the document's tuple section is ignored (committed
// deletions stay deleted).
func OpenWithOptions(source string, opts Options) (*Repository, []Op, error) {
	return core.OpenWithOptions(source, opts)
}

// OpenDocument is Open returning the full parsed document, including
// declared conjunctive queries.
func OpenDocument(source string) (*Repository, *Document, error) {
	return core.OpenDocument(source)
}

// OpenDocumentWithOptions is OpenDocument with a backing selection.
func OpenDocumentWithOptions(source string, opts Options) (*Repository, *Document, error) {
	return core.OpenDocumentWithOptions(source, opts)
}

// Document is a parsed repository definition.
type Document = parse.Document

// RandomUser returns the paper's §6 simulated user: frontier
// operations chosen uniformly at random among the available
// alternatives, deterministically by seed.
func RandomUser(seed uint64) User { return simuser.New(seed) }

// UnifyFirstUser returns a user that unifies whenever possible — the
// knowledgeable human who short-circuits infinite cascades (§2.2).
func UnifyFirstUser() User { return simuser.UnifyFirst() }

// SilentUser returns a user that never answers: updates that block on
// a frontier question park in the decision inbox (ErrParked) instead
// of completing inline — the asynchronous curator workflow.
func SilentUser() User { return simuser.Silent() }

// Cascading-abort trackers (§5.1).
var (
	// Naive aborts every lower-priority update when any update aborts.
	Naive Tracker = cc.Naive{}
	// Coarse tracks read dependencies at relation granularity.
	Coarse Tracker = cc.Coarse{}
	// Precise computes exact read dependencies against the database.
	Precise Tracker = cc.Precise{}
)

// ErrProtectedCascade is returned by Repository.Apply when a deletion
// would cascade into a protected relation (§2.1).
var ErrProtectedCascade = core.ErrProtectedCascade

// Decision-inbox surface. When an update's chase blocks on a frontier
// question its user cannot answer yet, Repository.Apply parks the
// update instead of failing: the open question becomes an addressable
// InboxEntry that can be listed, claimed, and answered later — on a
// durable repository, after a process restart too (parks and answers
// are write-ahead-logged, and reopening the data directory restores
// the inbox and resumes what the recorded answers already complete).
// Per-entry policies cover curators who never answer: a deadline that
// auto-answers via a fallback user or aborts the parked update, and
// periodic priority escalation.
type (
	// InboxEntry is one parked decision.
	InboxEntry = inbox.Entry
	// InboxPolicy is a per-entry timeout/escalation policy, in logical
	// ticks (advanced by Repository.InboxTick).
	InboxPolicy = inbox.Policy
	// InboxStatus is an entry's lifecycle state.
	InboxStatus = inbox.Status
	// InboxBox is the shared in-memory decision inbox; hand one to
	// SchedulerConfig.Inbox to make the concurrent schedulers park
	// blocked updates instead of busy-repolling their users.
	InboxBox = inbox.Box
)

// Inbox entry statuses and deadline actions.
const (
	// InboxPending means the question awaits a curator.
	InboxPending = inbox.Pending
	// InboxClaimed means a curator took the question.
	InboxClaimed = inbox.Claimed
	// InboxAnswered means an answer was recorded and the update is
	// resuming.
	InboxAnswered = inbox.Answered
	// DeadlineNone lets entries wait indefinitely.
	DeadlineNone = inbox.DeadlineNone
	// DeadlineAutoAnswer answers expired entries via the fallback user.
	DeadlineAutoAnswer = inbox.DeadlineAutoAnswer
	// DeadlineAbort cancels expired entries' updates.
	DeadlineAbort = inbox.DeadlineAbort
)

// NewInbox returns an empty decision inbox for SchedulerConfig.Inbox.
func NewInbox() *InboxBox { return inbox.NewBox() }

// ErrParked matches (via errors.Is) the error Repository.Apply returns
// when it parked the update in the decision inbox; the error is a
// *ParkedError carrying the entry ID.
var ErrParked = core.ErrParked

// ParkedError reports that Apply parked its update; answer the entry
// with Repository.AnswerInbox.
type ParkedError = core.ParkedError
