// Travel: the paper's running narrative end to end — Example 2.3 (a
// deletion repaired backward with a human choosing the deletion
// candidate) and Example 3.1 (two concurrent updates whose naive
// interleaving is not serializable; the optimistic scheduler detects
// the interference and aborts the premature update).
package main

import (
	"fmt"
	"log"

	"youtopia"
	"youtopia/internal/cc"
	"youtopia/internal/fixtures"
	"youtopia/internal/storage"
)

func buildRepo() (*youtopia.Repository, error) {
	repo, err := youtopia.New(fixtures.TravelSchema(), fixtures.TravelMappings())
	if err != nil {
		return nil, err
	}
	return repo, fixtures.TravelData(repo.Store())
}

func main() {
	example23()
	example31(cc.ModePrevent)
	example31(cc.ModeFlag)
}

// example23 reproduces Example 2.3: deleting the Geneva Winery review
// violates σ3; the backward chase cannot decide alone whether to
// delete the attraction or the tour, so a human picks the tour.
func example23() {
	repo, err := buildRepo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Example 2.3: delete R(XYZ, Geneva Winery, Great!)")
	user := youtopia.UserFunc(func(u *youtopia.Update, g *youtopia.FrontierGroup,
		opts []youtopia.Decision, _ string) (youtopia.Decision, bool) {
		snap := repo.Store().Snap(u.Number)
		fmt.Println("   negative frontier (deletion candidates):")
		for _, id := range g.Candidates {
			if tv, ok := snap.GetTuple(id); ok {
				fmt.Println("     ", tv)
			}
		}
		for _, id := range g.Candidates {
			if tv, ok := snap.GetTuple(id); ok && tv.Rel == "T" {
				fmt.Println("   the user deletes the tour")
				return youtopia.Decision{Kind: youtopia.DecideDelete,
					Subset: []storage.TupleID{id}}, true
			}
		}
		return opts[0], true
	})
	op := youtopia.Delete(youtopia.NewTuple("R",
		youtopia.Const("XYZ"), youtopia.Const("Geneva Winery"), youtopia.Const("Great!")))
	if _, err := repo.Apply(op, user); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   tours after the repair:")
	for _, t := range repo.Facts()["T"] {
		fmt.Println("     ", t)
	}
	fmt.Println()
}

// example31 reproduces Example 3.1 under both concurrency-control
// modes: prevention (the interference aborts u2) and detection (the
// interference is flagged and survives).
func example31(mode cc.Mode) {
	repo, err := buildRepo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Example 3.1 in %s mode\n", mode)

	// u1 deletes the review and will — after a pause — direct the
	// system to delete the witness tour; u2 meanwhile inserts a new
	// convention, prematurely deriving an excursion recommendation from
	// the doomed tour.
	ops := []youtopia.Op{
		youtopia.Delete(youtopia.NewTuple("R",
			youtopia.Const("XYZ"), youtopia.Const("Geneva Winery"), youtopia.Const("Great!"))),
		youtopia.Insert(youtopia.NewTuple("V",
			youtopia.Const("Syracuse"), youtopia.Const("Math Conf"))),
	}
	polls := 0
	user := youtopia.UserFunc(func(u *youtopia.Update, g *youtopia.FrontierGroup,
		opts []youtopia.Decision, _ string) (youtopia.Decision, bool) {
		if polls < 3 {
			polls++ // the human is slow; u2 runs ahead meanwhile
			return youtopia.Decision{}, false
		}
		snap := repo.Store().Snap(u.Number)
		for _, id := range g.Candidates {
			if tv, ok := snap.GetTuple(id); ok && tv.Rel == "T" {
				return youtopia.Decision{Kind: youtopia.DecideDelete,
					Subset: []storage.TupleID{id}}, true
			}
		}
		return opts[0], true
	})
	m, err := repo.RunConcurrent(ops, youtopia.SchedulerConfig{
		Tracker: youtopia.Precise,
		Mode:    mode,
		User:    user,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   aborts=%d, direct conflicts=%d, flagged=%d\n",
		m.Aborts, m.DirectAbortRequests, m.Flagged)
	badTuple := youtopia.NewTuple("E",
		youtopia.Const("Math Conf"), youtopia.Const("Geneva Winery"))
	present := false
	for _, t := range repo.Facts()["E"] {
		if t.Equal(badTuple) {
			present = true
		}
	}
	switch {
	case mode == cc.ModePrevent && !present:
		fmt.Println("   the premature E(Math Conf, Geneva Winery) was prevented: u2 aborted and re-ran")
	case mode == cc.ModeFlag && present:
		fmt.Println("   the premature E(Math Conf, Geneva Winery) survives but was flagged for manual correction")
	default:
		fmt.Println("   unexpected outcome — check the scheduler")
	}
	fmt.Println()
}
