// Quickstart: build the paper's Figure 2 travel repository through the
// public API, run Example 1.1 (an insert whose consequences propagate
// through mapping σ3), and show the §2.2 frontier scenario where a
// mapping cycle stops at a frontier tuple instead of cascading
// forever.
package main

import (
	"fmt"
	"log"

	"youtopia"
)

const travelRepository = `
# Figure 2 of the paper: a small travel repository.
relation C(city)
relation S(code, location, city_served)
relation A(location, name)
relation T(attraction, company, tour_start)
relation R(company, attraction, review)
relation V(city, convention)
relation E(convention, attraction)

# sigma1: every city has a suggested airport.
mapping sigma1: C(c) -> exists a, l: S(a, l, c)
# sigma2: every airport is located in a city and serves a city.
mapping sigma2: S(a, l, c) -> C(l), C(c)
# sigma3: whenever a company offers tours of an attraction, it is reviewed.
mapping sigma3: A(l, n), T(n, co, st) -> exists r: R(co, n, r)
# sigma4: convention attendees receive day-trip recommendations.
mapping sigma4: V(ci, x), T(n, co, ci) -> E(x, n)

tuple C("Ithaca")
tuple C("Syracuse")
tuple S("SYR", "Syracuse", "Syracuse")
tuple S("SYR", "Syracuse", "Ithaca")
tuple A("Geneva", "Geneva Winery")
tuple A("Niagara Falls", "Niagara Falls")
tuple T("Geneva Winery", "XYZ", "Syracuse")
tuple T("Niagara Falls", ?x1, "Toronto")
tuple R("XYZ", "Geneva Winery", "Great!")
tuple R(?x1, "Niagara Falls", ?x2)
tuple V("Syracuse", "Science Conf")
tuple E("Science Conf", "Geneva Winery")
`

func main() {
	repo, _, err := youtopia.Open(travelRepository)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Loaded the Figure 2 repository. Mapping analysis:")
	fmt.Print(repo.Analyze())

	// Example 1.1: ABC Tours starts running tours to Niagara Falls.
	// σ3 requires a review; the chase inserts R(ABC Tours, Niagara
	// Falls, x) with a fresh labeled null for the unknown review.
	fmt.Println("\n== Example 1.1: insert T(Niagara Falls, ABC Tours, Toronto)")
	op := youtopia.Insert(youtopia.NewTuple("T",
		youtopia.Const("Niagara Falls"), youtopia.Const("ABC Tours"), youtopia.Const("Toronto")))
	stats, err := repo.Apply(op, youtopia.UnifyFirstUser())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase finished: %d steps, %d writes, %d frontier requests\n",
		stats.Steps, stats.Writes, stats.FrontierRequests)
	for _, t := range repo.Facts()["R"] {
		fmt.Println("  R:", t)
	}

	// §2.2: the mapping cycle σ1/σ2. Adding JFK as a suggested airport
	// for Ithaca triggers C(NYC), then a fresh airport for NYC, then
	// C(x') — which has more specific counterparts, so the chase stops
	// at a frontier. The unify-first user supplies the knowledge that
	// the airport's city is NYC itself.
	fmt.Println("\n== §2.2: insert S(JFK, NYC, Ithaca) under the σ1/σ2 cycle")
	op = youtopia.Insert(youtopia.NewTuple("S",
		youtopia.Const("JFK"), youtopia.Const("NYC"), youtopia.Const("Ithaca")))
	stats, err = repo.Apply(op, youtopia.UnifyFirstUser())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chase finished: %d steps, %d frontier requests, %d unifications\n",
		stats.Steps, stats.FrontierRequests, stats.Unifications)
	for _, t := range repo.Facts()["S"] {
		fmt.Println("  S:", t)
	}
	if len(repo.Violations()) == 0 {
		fmt.Println("\nall mappings satisfied — the cycle terminated cooperatively")
	}
}
