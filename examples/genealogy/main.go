// Genealogy: the §2.2 cyclic mapping
//
//	Person(x) → ∃y Father(x, y) ∧ Person(y)
//
// ("every person has a father who is also a person"). Under the
// classical chase this tgd is rejected — it is not weakly acyclic and
// inserting one person cascades forever. Youtopia admits it: the chase
// stops at frontier tuples, and nontermination becomes *controlled* —
// users can always extend the ancestry, or close it off by unifying.
//
// This program builds the family tree interactively-in-spirit: a
// scripted user expands three generations of ancestors and then
// unifies, declaring the oldest known ancestor to be his own father.
package main

import (
	"fmt"
	"log"

	"youtopia"
)

const genealogy = `
relation Person(name)
relation Father(child, father)
mapping ancestry: Person(x) -> exists y: Father(x, y), Person(y)
`

func main() {
	repo, _, err := youtopia.Open(genealogy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mapping analysis (this tgd defeats the classical chase):")
	fmt.Print(repo.Analyze())

	// The scripted user: expand the Father and Person frontier tuples
	// for three generations, then unify the dangling Person with the
	// oldest ancestor already present.
	expansions := 0
	user := youtopia.UserFunc(func(u *youtopia.Update, g *youtopia.FrontierGroup,
		opts []youtopia.Decision, _ string) (youtopia.Decision, bool) {
		if expansions < 6 { // two expands per generation: Father + Person
			for _, d := range opts {
				if d.Kind == youtopia.DecideExpand {
					expansions++
					return d, true
				}
			}
		}
		for _, d := range opts {
			if d.Kind == youtopia.DecideUnify {
				return d, true
			}
		}
		return opts[0], true
	})

	fmt.Println("\n== insert Person(John)")
	_, err = repo.Apply(youtopia.Insert(youtopia.NewTuple("Person", youtopia.Const("John"))), user)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the ancestry chain after three expansions and one unification:")
	for _, t := range repo.Facts()["Father"] {
		fmt.Println("  ", t)
	}
	for _, t := range repo.Facts()["Person"] {
		fmt.Println("  ", t)
	}
	if len(repo.Violations()) == 0 {
		fmt.Println("\nall mappings satisfied: the 'infinite' ancestry closed cooperatively")
	}
}
