// Concurrent: a miniature of the paper's §6 evaluation. A synthetic
// universe is generated (random relations, cyclic random mappings, an
// initial database produced by update exchange itself), a workload of
// concurrent updates runs under the optimistic scheduler, and the
// three cascading-abort algorithms are compared head to head.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"youtopia/internal/cc"
	"youtopia/internal/simuser"
	"youtopia/internal/workload"
)

func main() {
	cfg := workload.Config{
		Relations: 50, MinArity: 1, MaxArity: 6, Constants: 25,
		Mappings: 35, MaxAtomsPerSide: 3, InitialTuples: 2000,
		Updates: 100, InsertPct: 80, Seed: 7,
	}
	fmt.Println("building the synthetic universe (initial database via update exchange)...")
	u, err := workload.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe: %d relations, %d mappings, %d initial facts\n",
		u.Schema.Len(), u.Mappings.Len(), len(u.Initial))

	fmt.Printf("\nworkload: %d concurrent updates (%d%% inserts), round-robin step scheduling\n",
		cfg.Updates, cfg.InsertPct)
	fmt.Printf("%-10s %10s %10s %14s %12s %12s\n",
		"tracker", "aborts", "reruns", "cascading-req", "frontier-ops", "time/update")
	for _, tr := range []cc.Tracker{cc.Naive{}, cc.Coarse{}, cc.Precise{}} {
		st, err := u.NewStore()
		if err != nil {
			log.Fatal(err)
		}
		ops := u.GenOps(rand.New(rand.NewSource(99)))
		sched := cc.NewScheduler(st, u.Mappings, cc.Config{
			Tracker: tr,
			Policy:  cc.PolicyRoundRobinStep,
			User:    simuser.New(123),
		})
		start := time.Now()
		m, err := sched.Run(ops)
		if err != nil {
			log.Fatal(err)
		}
		per := time.Duration(0)
		if m.Runs > 0 {
			per = time.Since(start) / time.Duration(m.Runs)
		}
		fmt.Printf("%-10s %10d %10d %14d %12d %12s\n",
			tr.Name(), m.Aborts, m.Runs, m.CascadingAbortRequests, m.FrontierOps, per)
	}
	fmt.Println("\nNAIVE cascades indiscriminately; COARSE tracks relation-level read")
	fmt.Println("dependencies; PRECISE asks the database exactly which writes matter.")
}
