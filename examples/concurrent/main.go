// Concurrent: a miniature of the paper's §6 evaluation. A synthetic
// universe is generated (random relations, cyclic random mappings, an
// initial database produced by update exchange itself) and a workload
// of concurrent updates runs under the optimistic scheduler. Part one
// compares the three cascading-abort algorithms head to head on the
// cooperative interleaver; part two runs the same workload on the
// goroutine-parallel runtime across worker counts, demonstrating that
// real goroutine-level concurrency preserves the workload's outcome
// while using the machine's cores.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"youtopia/internal/cc"
	"youtopia/internal/experiments"
	"youtopia/internal/simuser"
	"youtopia/internal/workload"
)

func main() {
	cfg := workload.Config{
		Relations: 50, MinArity: 1, MaxArity: 6, Constants: 25,
		Mappings: 35, MaxAtomsPerSide: 3, InitialTuples: 2000,
		Updates: 100, InsertPct: 80, Seed: 7,
	}
	fmt.Println("building the synthetic universe (initial database via update exchange)...")
	u, err := workload.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe: %d relations, %d mappings, %d initial facts\n",
		u.Schema.Len(), u.Mappings.Len(), len(u.Initial))

	fmt.Printf("\nworkload: %d concurrent updates (%d%% inserts), round-robin step scheduling\n",
		cfg.Updates, cfg.InsertPct)
	fmt.Printf("%-10s %10s %10s %14s %12s %12s\n",
		"tracker", "aborts", "reruns", "cascading-req", "frontier-ops", "time/update")
	for _, tr := range []cc.Tracker{cc.Naive{}, cc.Coarse{}, cc.Precise{}} {
		st, err := u.NewStore()
		if err != nil {
			log.Fatal(err)
		}
		ops := u.GenOps(rand.New(rand.NewSource(99)))
		sched := cc.NewScheduler(st, u.Mappings, cc.Config{
			Tracker: tr,
			Policy:  cc.PolicyRoundRobinStep,
			User:    simuser.New(123),
		})
		start := time.Now()
		m, err := sched.Run(ops)
		if err != nil {
			log.Fatal(err)
		}
		per := time.Duration(0)
		if m.Runs > 0 {
			per = time.Since(start) / time.Duration(m.Runs)
		}
		fmt.Printf("%-10s %10d %10d %14d %12d %12s\n",
			tr.Name(), m.Aborts, m.Runs, m.CascadingAbortRequests, m.FrontierOps, per)
	}
	fmt.Println("\nNAIVE cascades indiscriminately; COARSE tracks relation-level read")
	fmt.Println("dependencies; PRECISE asks the database exactly which writes matter.")

	fmt.Printf("\ngoroutine-parallel runtime (COARSE tracker, GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s %10s %10s %12s %12s\n",
		"mode", "aborts", "reruns", "wall", "upd/s")
	for _, workers := range []int{0, 1, 2, 4} {
		st, err := u.NewStore()
		if err != nil {
			log.Fatal(err)
		}
		ops := u.GenOps(rand.New(rand.NewSource(99)))
		m, wall, err := experiments.RunMode(st, u.Mappings, cc.Config{
			Tracker: cc.Coarse{},
			User:    simuser.New(123),
			Workers: workers,
		}, ops)
		if err != nil {
			log.Fatal(err)
		}
		throughput := 0.0
		if wall.Seconds() > 0 {
			throughput = float64(m.Submitted) / wall.Seconds()
		}
		fmt.Printf("%-12s %10d %10d %12s %12.0f\n",
			experiments.ModeLabel(workers), m.Aborts, m.Runs, wall.Round(time.Millisecond), throughput)
	}
	fmt.Println("\nEvery mode commits a serializable final instance: workers race through")
	fmt.Println("chase read phases in parallel while writes and conflict checks remain")
	fmt.Println("atomic under the phase lock, and updates commit in priority order.")
}
