package youtopia_test

import (
	"fmt"
	"log"

	"youtopia"
)

// ExampleOpen builds the heart of the paper's Figure 2 repository and
// runs Example 1.1: inserting a tour makes the chase generate the
// missing review with a labeled null for the unknown text.
func ExampleOpen() {
	repo, _, err := youtopia.Open(`
relation A(location, name)
relation T(attraction, company, tour_start)
relation R(company, attraction, review)
mapping sigma3: A(l, n), T(n, co, st) -> exists r: R(co, n, r)
tuple A("Niagara Falls", "Niagara Falls")
`)
	if err != nil {
		log.Fatal(err)
	}
	_, err = repo.Apply(
		youtopia.Insert(youtopia.NewTuple("T",
			youtopia.Const("Niagara Falls"), youtopia.Const("ABC Tours"), youtopia.Const("Toronto"))),
		youtopia.UnifyFirstUser())
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range repo.Facts()["R"] {
		fmt.Println(t.Rel, "has", t.Arity(), "attributes; company =", t.Vals[0])
	}
	// Output:
	// R has 3 attributes; company = ABC Tours
}

// ExampleRepository_Certain contrasts the two query semantics of §1.2
// on incomplete data: the unknown company x1 is excluded from certain
// answers but surfaces under best effort.
func ExampleRepository_Certain() {
	repo, doc, err := youtopia.OpenDocument(`
relation T(attraction, company, tour_start)
tuple T("Winery", "XYZ", "Syracuse")
tuple T("Falls", ?x1, "Toronto")
query companies(co): T(a, co, s)
`)
	if err != nil {
		log.Fatal(err)
	}
	certain, _ := repo.Certain(doc.Queries[0])
	best, _ := repo.BestEffort(doc.Queries[0])
	fmt.Println("certain:", len(certain), "answer(s)")
	fmt.Println("best-effort:", len(best), "answer(s)")
	// Output:
	// certain: 1 answer(s)
	// best-effort: 2 answer(s)
}

// ExampleRepository_RunConcurrent runs two concurrent updates under
// the optimistic scheduler with the PRECISE cascading-abort algorithm.
func ExampleRepository_RunConcurrent() {
	repo, _, err := youtopia.Open(`
relation V(city, convention)
relation E(convention, attraction)
relation T(attraction, company, tour_start)
mapping sigma4: V(ci, x), T(n, co, ci) -> E(x, n)
tuple T("Winery", "XYZ", "Syracuse")
`)
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := repo.RunConcurrent([]youtopia.Op{
		youtopia.Insert(youtopia.NewTuple("V", youtopia.Const("Syracuse"), youtopia.Const("Science Conf"))),
		youtopia.Insert(youtopia.NewTuple("V", youtopia.Const("Syracuse"), youtopia.Const("Math Conf"))),
	}, youtopia.SchedulerConfig{
		Tracker: youtopia.Precise,
		User:    youtopia.RandomUser(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updates:", metrics.Submitted, "aborts:", metrics.Aborts)
	fmt.Println("recommendations:", len(repo.Facts()["E"]))
	// Output:
	// updates: 2 aborts: 0
	// recommendations: 2
}
