// Command youtopia loads a repository definition in the textual
// repository language, applies its update operations through the
// cooperative chase, and reports the resulting state.
//
// Usage:
//
//	youtopia [flags] repository.ytp
//
// The file declares relations, mappings, initial tuples and update
// operations (see internal/parse for the grammar). Frontier operations
// are answered interactively on the terminal by default; with -auto
// they are chosen uniformly at random by the paper's simulated user.
//
// Flags:
//
//	-auto uint     answer frontier operations automatically with the
//	               given random seed (0 = interactive)
//	-analyze       print mapping analyses (cycles, weak acyclicity)
//	-data-dir dir  durable repository: recover committed state from
//	               dir's write-ahead log on boot and log every commit
//	               (empty = in-memory)
//	-shards n      partition the relations across n independent store
//	               shards, each with its own write-ahead log under
//	               data-dir/shard-<k> (0 or 1 = single store; a data
//	               directory remembers its shard count)
//	-dump          print the full repository contents at the end
//	-skip-ops      load the repository but do not run its operations
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"youtopia"
	"youtopia/internal/chase"
	"youtopia/internal/parse"
)

func main() {
	auto := flag.Uint64("auto", 0, "answer frontier operations automatically (seed)")
	analyze := flag.Bool("analyze", false, "print mapping analyses")
	dataDir := flag.String("data-dir", "", "durable repository: write-ahead log + checkpoints under this directory (empty = in-memory)")
	shards := flag.Int("shards", 0, "partition relations across this many store shards, one WAL directory per shard under -data-dir (0 or 1 = single store)")
	dump := flag.Bool("dump", false, "print repository contents at the end")
	skipOps := flag.Bool("skip-ops", false, "do not run the document's operations")
	trace := flag.Bool("trace", false, "print each update's write provenance")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: youtopia [flags] repository.ytp")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	repo, doc, err := youtopia.OpenDocumentWithOptions(string(src), youtopia.Options{DataDir: *dataDir, Shards: *shards})
	if err != nil {
		fail(err)
	}
	defer repo.Close()
	ops := doc.Ops
	fmt.Printf("loaded %d relation(s), %d mapping(s), %d operation(s), %d quer(ies)\n",
		repo.Schema().Len(), repo.Mappings().Len(), len(ops), len(doc.Queries))
	if repo.Durable() {
		if info := repo.Recovery(); info.Fresh {
			fmt.Printf("durable repository at %s (fresh)\n", *dataDir)
		} else {
			fmt.Printf("durable repository at %s: recovered checkpoint@%d + %d commit batch(es), %d redo record(s)\n",
				*dataDir, info.CheckpointBatch, info.BatchesReplayed, info.RecordsReplayed)
		}
	}

	if *analyze {
		fmt.Println()
		fmt.Print(repo.Analyze())
	}
	if vs := repo.Violations(); len(vs) > 0 {
		fmt.Printf("warning: initial data violates %d mapping instance(s); ", len(vs))
		fmt.Println("the first update's chase will not repair pre-existing violations")
	}

	var user youtopia.User
	if *auto != 0 {
		user = youtopia.RandomUser(*auto)
	} else {
		user = &terminalUser{repo: repo, in: bufio.NewReader(os.Stdin)}
	}

	if !*skipOps {
		for i, op := range ops {
			fmt.Printf("\n== update %d: %s\n", i+1, op)
			stats, entries, err := repo.ApplyTraced(op, user)
			if err != nil {
				fail(fmt.Errorf("update %d: %w", i+1, err))
			}
			fmt.Printf("   done: %d step(s), %d write(s), %d frontier op(s)\n",
				stats.Steps, stats.Writes, stats.FrontierOps)
			if *trace {
				for _, entry := range entries {
					fmt.Printf("   %s\n", entry)
				}
			}
		}
	}

	for _, q := range doc.Queries {
		fmt.Printf("\n== query %s\n", q)
		certain, err := repo.Certain(q)
		if err != nil {
			fail(err)
		}
		best, err := repo.BestEffort(q)
		if err != nil {
			fail(err)
		}
		fmt.Println("  certain answers:")
		for _, row := range certain {
			fmt.Printf("    %s\n", parse.PrintTuple(row))
		}
		if len(certain) == 0 {
			fmt.Println("    (none)")
		}
		fmt.Println("  best-effort answers:")
		for _, row := range best {
			fmt.Printf("    %s\n", parse.PrintTuple(row))
		}
		if len(best) == 0 {
			fmt.Println("    (none)")
		}
	}

	if *dump {
		fmt.Println("\n== repository contents")
		fmt.Println(repo.Dump())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "youtopia:", err)
	os.Exit(1)
}

// terminalUser prompts on the terminal for frontier operations,
// showing the provenance (violated mapping and witness) the paper's
// interface design calls for (§2.2).
type terminalUser struct {
	repo *youtopia.Repository
	in   *bufio.Reader
}

// Decide implements chase.User.
func (t *terminalUser) Decide(u *chase.Update, g *chase.FrontierGroup, opts []chase.Decision, _ string) (chase.Decision, bool) {
	snap := t.repo.Store().Snap(u.Number)
	fmt.Printf("\nupdate %d needs help with mapping %s\n", u.Number, g.Viol.TGD.Name)
	fmt.Printf("  mapping: %s\n", g.Viol.TGD)
	fmt.Println("  witness:")
	for _, id := range g.Viol.Witness {
		if tv, ok := snap.GetTuple(id); ok {
			fmt.Printf("    %s\n", parse.PrintTuple(tv))
		}
	}
	if g.Positive {
		fmt.Println("  generated tuples not yet inserted (positive frontier):")
		for i, tv := range g.Tuples {
			fmt.Printf("    [%d] %s\n", i, parse.PrintTuple(tv))
		}
	} else {
		fmt.Println("  deletion candidates (negative frontier):")
		for _, id := range g.Candidates {
			if tv, ok := snap.GetTuple(id); ok {
				fmt.Printf("    #%d %s\n", id, parse.PrintTuple(tv))
			}
		}
	}
	fmt.Println("  options:")
	for i, d := range opts {
		fmt.Printf("    %2d) %s\n", i, t.render(u, g, d))
	}
	for {
		fmt.Print("choose option: ")
		line, err := t.in.ReadString('\n')
		if err != nil {
			return chase.Decision{}, false
		}
		idx, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil || idx < 0 || idx >= len(opts) {
			fmt.Printf("please enter a number between 0 and %d\n", len(opts)-1)
			continue
		}
		return opts[idx], true
	}
}

func (t *terminalUser) render(u *chase.Update, g *chase.FrontierGroup, d chase.Decision) string {
	snap := t.repo.Store().Snap(u.Number)
	switch d.Kind {
	case chase.DecideExpand:
		return fmt.Sprintf("expand %s (insert it)", parse.PrintTuple(g.Tuples[d.TupleIdx]))
	case chase.DecideUnify:
		target, _ := snap.GetTuple(d.Target)
		return fmt.Sprintf("unify %s with existing %s",
			parse.PrintTuple(g.Tuples[d.TupleIdx]), parse.PrintTuple(target))
	case chase.DecideDelete:
		parts := make([]string, len(d.Subset))
		for i, id := range d.Subset {
			tv, _ := snap.GetTuple(id)
			parts[i] = parse.PrintTuple(tv)
		}
		return "delete " + strings.Join(parts, " and ")
	default:
		return d.String()
	}
}
