// Command youtopia loads a repository definition in the textual
// repository language, applies its update operations through the
// cooperative chase, and reports the resulting state.
//
// Usage:
//
//	youtopia [flags] repository.ytp
//
// The file declares relations, mappings, initial tuples and update
// operations (see internal/parse for the grammar). Frontier operations
// are answered interactively on the terminal by default; with -auto
// they are chosen uniformly at random by the paper's simulated user.
//
// Flags:
//
//	-auto uint     answer frontier operations automatically with the
//	               given random seed (0 = interactive)
//	-analyze       print mapping analyses (cycles, weak acyclicity)
//	-data-dir dir  durable repository: recover committed state from
//	               dir's write-ahead log on boot and log every commit
//	               (empty = in-memory)
//	-shards n      partition the relations across n independent store
//	               shards, each with its own write-ahead log under
//	               data-dir/shard-<k> (0 or 1 = single store; a data
//	               directory remembers its shard count)
//	-dump          print the full repository contents at the end
//	-skip-ops      load the repository but do not run its operations
//	-debug-addr a  serve the observability endpoints (/metrics in
//	               Prometheus text format, /healthz — 503 + state name
//	               while the repository is degraded or poisoned —
//	               /debug/vars, /debug/pprof) on address a
//	-resume        re-arm a repository that degraded to read-only
//	               after a persistent I/O failure (run it once the
//	               fault — disk full, bad mount — is cleared)
//	-fault-rate p  inject transient write/sync faults into the log
//	               with probability p per operation (testing aid;
//	               exercises the retry and degradation machinery)
//	-fault-seed n  seed for -fault-rate's fault schedule
//	-trace-out f   record each update's lifecycle spans (submit, park,
//	               answer, resume, commit, ack) and write the
//	               timelines to f as JSON on exit
//
// Decision-inbox flags (the asynchronous curator workflow): with -park
// the document's operations run without a live user, so updates that
// block on a frontier question park in the durable decision inbox
// instead of prompting; a later invocation on the same -data-dir lists
// the open questions with -inbox and settles them with -claim,
// -answer, or -cancel — the parked update resumes where it stopped,
// across process restarts.
//
//	-park            park blocked updates in the inbox instead of
//	                 prompting (ignored with -auto)
//	-inbox           list the parked decisions and exit status 3 if any
//	                 remain open
//	-claim id:name   mark an entry as taken by a curator
//	-answer id:opt   answer an entry with one of its option indexes and
//	                 resume the parked update
//	-cancel id       abort a parked update for good
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"youtopia"
	"youtopia/internal/chase"
	"youtopia/internal/obs"
	"youtopia/internal/parse"
	"youtopia/internal/vfs"
)

func main() {
	auto := flag.Uint64("auto", 0, "answer frontier operations automatically (seed)")
	analyze := flag.Bool("analyze", false, "print mapping analyses")
	dataDir := flag.String("data-dir", "", "durable repository: write-ahead log + checkpoints under this directory (empty = in-memory)")
	shards := flag.Int("shards", 0, "partition relations across this many store shards, one WAL directory per shard under -data-dir (0 or 1 = single store)")
	dump := flag.Bool("dump", false, "print repository contents at the end")
	skipOps := flag.Bool("skip-ops", false, "do not run the document's operations")
	trace := flag.Bool("trace", false, "print each update's write provenance")
	traceOut := flag.String("trace-out", "", "write per-update lifecycle span timelines (submit/park/answer/resume/commit/ack) to this JSON file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (empty = disabled)")
	resume := flag.Bool("resume", false, "re-arm a repository that degraded to read-only after a persistent I/O failure")
	faultRate := flag.Float64("fault-rate", 0, "inject transient write/sync faults into the log with this per-operation probability (testing aid)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for -fault-rate's fault schedule")
	park := flag.Bool("park", false, "park blocked updates in the decision inbox instead of prompting")
	listInbox := flag.Bool("inbox", false, "list the parked decisions")
	claim := flag.String("claim", "", "claim an inbox entry: id:curator-name")
	answer := flag.String("answer", "", "answer an inbox entry: id:option-index")
	cancel := flag.Int64("cancel", 0, "cancel a parked update by inbox entry ID")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: youtopia [flags] repository.ytp")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (/metrics, /healthz, /debug/vars, /debug/pprof)\n", srv.Addr)
	}
	ropts := youtopia.Options{DataDir: *dataDir, Shards: *shards}
	if *faultRate > 0 {
		ffs := vfs.NewFaultFS(vfs.OS, *faultSeed)
		ffs.Probability(vfs.OpWrite, *faultRate, vfs.TransientIO)
		ffs.Probability(vfs.OpSync, *faultRate, vfs.TransientIO)
		ropts.FS = ffs
		fmt.Printf("fault injection armed: transient write/sync faults at %.3g per op (seed %d)\n", *faultRate, *faultSeed)
	}
	repo, doc, err := youtopia.OpenDocumentWithOptions(string(src), ropts)
	if err != nil {
		fail(err)
	}
	defer repo.Close()
	obs.SetHealthProbe(func() (string, bool) {
		h := repo.Health()
		return h.State.String(), h.State == youtopia.StateHealthy
	})
	if *resume {
		if err := repo.Resume(); err != nil {
			fail(fmt.Errorf("-resume: %w", err))
		}
		fmt.Println("repository resumed: accepting updates again")
	}
	defer func() {
		if h := repo.Health(); h.State != youtopia.StateHealthy {
			fmt.Fprintf(os.Stderr, "youtopia: warning: repository is %s: %s\n", h.State, h.Reason)
		}
	}()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		repo.SetTracer(tracer)
		defer func() {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "youtopia: writing trace:", err)
			}
		}()
	}
	ops := doc.Ops
	fmt.Printf("loaded %d relation(s), %d mapping(s), %d operation(s), %d quer(ies)\n",
		repo.Schema().Len(), repo.Mappings().Len(), len(ops), len(doc.Queries))
	if repo.Durable() {
		if info := repo.Recovery(); info.Fresh {
			fmt.Printf("durable repository at %s (fresh)\n", *dataDir)
		} else {
			fmt.Printf("durable repository at %s: recovered checkpoint@%d + %d commit batch(es), %d redo record(s)\n",
				*dataDir, info.CheckpointBatch, info.BatchesReplayed, info.RecordsReplayed)
		}
	}

	if *analyze {
		fmt.Println()
		fmt.Print(repo.Analyze())
	}
	if vs := repo.Violations(); len(vs) > 0 {
		fmt.Printf("warning: initial data violates %d mapping instance(s); ", len(vs))
		fmt.Println("the first update's chase will not repair pre-existing violations")
	}

	var user youtopia.User
	switch {
	case *auto != 0:
		user = youtopia.RandomUser(*auto)
	case *park:
		user = youtopia.SilentUser()
	default:
		user = &terminalUser{repo: repo, in: bufio.NewReader(os.Stdin)}
	}

	if !*skipOps {
		for i, op := range ops {
			fmt.Printf("\n== update %d: %s\n", i+1, op)
			stats, entries, err := repo.ApplyTraced(op, user)
			var parked *youtopia.ParkedError
			if errors.As(err, &parked) {
				fmt.Printf("   parked as inbox entry %d (answer it with -answer %d:<option>)\n",
					parked.ID, parked.ID)
				continue
			}
			if err != nil {
				fail(fmt.Errorf("update %d: %w", i+1, err))
			}
			fmt.Printf("   done: %d step(s), %d write(s), %d frontier op(s)\n",
				stats.Steps, stats.Writes, stats.FrontierOps)
			if *trace {
				for _, entry := range entries {
					fmt.Printf("   %s\n", entry)
				}
			}
		}
	}

	if *claim != "" {
		id, who, err := splitIDArg(*claim)
		if err != nil {
			fail(fmt.Errorf("-claim: %w", err))
		}
		if err := repo.ClaimInbox(id, who); err != nil {
			fail(err)
		}
		fmt.Printf("inbox entry %d claimed by %s\n", id, who)
	}
	if *answer != "" {
		id, optStr, err := splitIDArg(*answer)
		if err != nil {
			fail(fmt.Errorf("-answer: %w", err))
		}
		opt, err := strconv.Atoi(optStr)
		if err != nil {
			fail(fmt.Errorf("-answer: option index %q: %w", optStr, err))
		}
		resolved, err := repo.AnswerInbox(id, opt)
		if err != nil {
			fail(err)
		}
		if resolved {
			fmt.Printf("inbox entry %d answered; the parked update resumed and committed\n", id)
		} else {
			fmt.Printf("inbox entry %d answered; the update advanced but blocked on a new question (see -inbox)\n", id)
		}
	}
	if *cancel != 0 {
		if err := repo.CancelInbox(*cancel); err != nil {
			fail(err)
		}
		fmt.Printf("inbox entry %d cancelled; its update is aborted\n", *cancel)
	}
	openEntries := 0
	if *listInbox {
		entries := repo.Inbox()
		openEntries = len(entries)
		fmt.Printf("\n== decision inbox (%d open)\n", len(entries))
		for _, e := range entries {
			fmt.Printf("[%d] prio %d, %s", e.ID, e.Priority, e.Status)
			if e.Claimant != "" {
				fmt.Printf(" by %s", e.Claimant)
			}
			fmt.Printf(": %s\n", e.Question)
			for i, opt := range e.Options {
				fmt.Printf("    %2d) %s\n", i, opt)
			}
		}
	}

	for _, q := range doc.Queries {
		fmt.Printf("\n== query %s\n", q)
		certain, err := repo.Certain(q)
		if err != nil {
			fail(err)
		}
		best, err := repo.BestEffort(q)
		if err != nil {
			fail(err)
		}
		fmt.Println("  certain answers:")
		for _, row := range certain {
			fmt.Printf("    %s\n", parse.PrintTuple(row))
		}
		if len(certain) == 0 {
			fmt.Println("    (none)")
		}
		fmt.Println("  best-effort answers:")
		for _, row := range best {
			fmt.Printf("    %s\n", parse.PrintTuple(row))
		}
		if len(best) == 0 {
			fmt.Println("    (none)")
		}
	}

	if *dump {
		fmt.Println("\n== repository contents")
		fmt.Println(repo.Dump())
	}
	if *listInbox && openEntries > 0 {
		repo.Close()
		os.Exit(3)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "youtopia:", err)
	os.Exit(1)
}

// splitIDArg parses an "id:rest" flag value.
func splitIDArg(s string) (int64, string, error) {
	idStr, rest, ok := strings.Cut(s, ":")
	if !ok {
		return 0, "", fmt.Errorf("expected id:value, got %q", s)
	}
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("entry ID %q: %w", idStr, err)
	}
	return id, rest, nil
}

// terminalUser prompts on the terminal for frontier operations,
// showing the provenance (violated mapping and witness) the paper's
// interface design calls for (§2.2).
type terminalUser struct {
	repo *youtopia.Repository
	in   *bufio.Reader
}

// Decide implements chase.User.
func (t *terminalUser) Decide(u *chase.Update, g *chase.FrontierGroup, opts []chase.Decision, _ string) (chase.Decision, bool) {
	snap := t.repo.Store().Snap(u.Number)
	fmt.Printf("\nupdate %d needs help with mapping %s\n", u.Number, g.Viol.TGD.Name)
	fmt.Printf("  mapping: %s\n", g.Viol.TGD)
	fmt.Println("  witness:")
	for _, id := range g.Viol.Witness {
		if tv, ok := snap.GetTuple(id); ok {
			fmt.Printf("    %s\n", parse.PrintTuple(tv))
		}
	}
	if g.Positive {
		fmt.Println("  generated tuples not yet inserted (positive frontier):")
		for i, tv := range g.Tuples {
			fmt.Printf("    [%d] %s\n", i, parse.PrintTuple(tv))
		}
	} else {
		fmt.Println("  deletion candidates (negative frontier):")
		for _, id := range g.Candidates {
			if tv, ok := snap.GetTuple(id); ok {
				fmt.Printf("    #%d %s\n", id, parse.PrintTuple(tv))
			}
		}
	}
	fmt.Println("  options:")
	for i, d := range opts {
		fmt.Printf("    %2d) %s\n", i, t.render(u, g, d))
	}
	for {
		fmt.Print("choose option: ")
		line, err := t.in.ReadString('\n')
		if err != nil {
			return chase.Decision{}, false
		}
		idx, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil || idx < 0 || idx >= len(opts) {
			fmt.Printf("please enter a number between 0 and %d\n", len(opts)-1)
			continue
		}
		return opts[idx], true
	}
}

func (t *terminalUser) render(u *chase.Update, g *chase.FrontierGroup, d chase.Decision) string {
	snap := t.repo.Store().Snap(u.Number)
	switch d.Kind {
	case chase.DecideExpand:
		return fmt.Sprintf("expand %s (insert it)", parse.PrintTuple(g.Tuples[d.TupleIdx]))
	case chase.DecideUnify:
		target, _ := snap.GetTuple(d.Target)
		return fmt.Sprintf("unify %s with existing %s",
			parse.PrintTuple(g.Tuples[d.TupleIdx]), parse.PrintTuple(target))
	case chase.DecideDelete:
		parts := make([]string, len(d.Subset))
		for i, id := range d.Subset {
			tv, _ := snap.GetTuple(id)
			parts[i] = parse.PrintTuple(tv)
		}
		return "delete " + strings.Join(parts, " and ")
	default:
		return d.String()
	}
}
