// The -figure chaos lane: the parallel workload runs repeatedly under
// randomized all-transient fault schedules (vfs/chaostest), and every
// run is held to the durability invariants — the log stays healthy
// (retries absorb the faults), no acknowledged commit is lost, and the
// recovered instance matches the live one. A violated invariant exits
// nonzero, so the lane doubles as the CI chaos battery's command-line
// form.
package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"youtopia/internal/cc"
	"youtopia/internal/simuser"
	"youtopia/internal/vfs"
	"youtopia/internal/vfs/chaostest"
	"youtopia/internal/wal"
	"youtopia/internal/workload"
)

type chaosPoint struct {
	Seed    int64
	Batches int64
	Syncs   int64
	Retries int64
	State   wal.State
	Elapsed time.Duration
}

// runChaos executes the chaos battery: seeds runs of the workload, each
// against a fresh WAL directory and a fresh fault schedule. The
// returned error reports the first invariant violation.
func runChaos(base workload.Config, seeds int, faultSeed int64, intensity int, dataDir string) ([]chaosPoint, error) {
	u, err := workload.Build(base)
	if err != nil {
		return nil, err
	}
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "youtopia-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}
	points := make([]chaosPoint, 0, seeds)
	for i := 0; i < seeds; i++ {
		seed := faultSeed + int64(i)
		dir := filepath.Join(dataDir, fmt.Sprintf("chaos-%04d", i))
		pt, err := runChaosSeed(u, dir, seed, intensity)
		if err != nil {
			return points, fmt.Errorf("seed %d: %w", seed, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

func runChaosSeed(u *workload.Universe, dir string, seed int64, intensity int) (chaosPoint, error) {
	ffs := vfs.NewFaultFS(vfs.OS, seed)
	st, mgr, err := u.OpenDurableStore(dir, wal.Options{
		FS:              ffs,
		SegmentBytes:    1 << 14,
		CheckpointBytes: 1 << 15,
		RetryBase:       100 * time.Microsecond,
	})
	if err != nil {
		return chaosPoint{}, fmt.Errorf("open: %w", err)
	}
	// The schedule arms only after the open: the open-time repair path
	// does not retry, by design.
	ffs.Script(chaostest.TransientSchedule(seed*7919+13, intensity)...)

	sched := cc.NewParallelScheduler(st, u.Mappings, cc.Config{
		Workers:            4,
		Tracker:            cc.Coarse{},
		User:               simuser.New(uint64(seed) + 1),
		MaxAbortsPerUpdate: 100000,
	})
	start := time.Now()
	if _, err := sched.Run(u.GenOpsSeeded(seed + 100)); err != nil {
		return chaosPoint{}, fmt.Errorf("workload under transient faults: %w", err)
	}
	pt := chaosPoint{Seed: seed, Elapsed: time.Since(start)}
	h := mgr.Health()
	pt.State, pt.Retries = h.State, h.Retries
	if h.State != wal.StateHealthy {
		return pt, fmt.Errorf("transient-only schedule left state %v (%s)", h.State, h.Reason)
	}
	final := st.Dump(1 << 30)
	pt.Batches, pt.Syncs = mgr.Batches(), mgr.Syncs()
	if err := mgr.Close(); err != nil {
		return pt, fmt.Errorf("close under leftover faults: %w", err)
	}
	st2, info, err := wal.Recover(dir, u.Schema)
	if err != nil {
		return pt, fmt.Errorf("recovery: %w", err)
	}
	if info.LastBatch != pt.Batches {
		return pt, fmt.Errorf("recovered to batch %d, want %d (acked commits lost)", info.LastBatch, pt.Batches)
	}
	if st2.Dump(1<<30) != final {
		return pt, errors.New("recovered instance differs from the acked one")
	}
	return pt, nil
}

func renderChaos(points []chaosPoint) string {
	out := "seed      batches   syncs   retries   state      elapsed\n"
	var batches, syncs, retries int64
	for _, p := range points {
		out += fmt.Sprintf("%-8d  %-8d  %-6d  %-8d  %-9v  %v\n",
			p.Seed, p.Batches, p.Syncs, p.Retries, p.State, p.Elapsed.Round(time.Millisecond))
		batches += p.Batches
		syncs += p.Syncs
		retries += p.Retries
	}
	out += fmt.Sprintf("\n%d runs, %d batches, %d syncs, %d transient retries absorbed; every run recovered byte-identically\n",
		len(points), batches, syncs, retries)
	return out
}
