// Command youtopia-bench reproduces the paper's evaluation (§6,
// Figures 3 and 4): the NAIVE / COARSE / PRECISE cascading-abort
// algorithms compared on synthetic workloads while the number of
// mappings sweeps from sparse to dense. Each figure prints three
// panels — total aborts, cascading abort requests, and the per-update
// execution-time slowdown of PRECISE over COARSE.
//
// Beyond the paper's figures, -figure parallel compares the serial
// reference execution against the goroutine-parallel runtime across a
// sweep of worker counts, reporting wall time and committed-update
// throughput; with -data-dir the runs execute against a write-ahead-
// logged store (one fsync per commit batch), measuring durable
// throughput and the group-commit sync amortization. -figure sharded
// sweeps the relation-partition count of the sharded store instead
// (fixed workers, per-shard WAL directories under -data-dir),
// reporting the aggregated commit batches, WAL syncs, and commit-ack
// percentiles per shard count. -figure multicore sweeps GOMAXPROCS
// caps at a fixed worker count with epoch-snapshot reader goroutines
// running beside the writers, reporting update and wait-free read
// throughput per cpu count (the CI cpu-matrix artifact). -figure chaos
// runs the durable workload under randomized transient fault schedules
// and exits nonzero unless every run stays healthy, loses no acked
// commit and recovers byte-identically.
//
// Usage:
//
//	youtopia-bench -figure both -preset paper -runs 3
//	youtopia-bench -figure chaos -preset quick -chaos-seeds 10
//	youtopia-bench -figure parallel -preset quick -workers 0,2,4
//	youtopia-bench -figure parallel -preset quick -data-dir /tmp/ybench
//	youtopia-bench -figure sharded -preset quick -shards 1,2,4 -data-dir /tmp/yshard
//	youtopia-bench -figure multicore -preset quick -cpus 1,2,4 -data-dir /tmp/ymc
//
// Observability riders work with every figure: -debug-addr serves
// /metrics (Prometheus text), /healthz, /debug/vars and /debug/pprof
// while the study runs and self-scrapes /metrics once at the end (the
// CI smoke check); -metrics prints a final registry snapshot table;
// -cpuprofile writes a CPU profile; -trace-out records per-update
// lifecycle span timelines as JSON.
//
// Presets:
//
//	quick     small universe, seconds (CI smoke runs)
//	moderate  paper structure at reduced data scale, ~1 minute
//	paper     the full §6 parameters: 100 relations, 50 constants,
//	          100 mappings, 10000 initial tuples, 500 updates
//
// Individual parameters can be overridden with flags after -preset.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"youtopia/internal/experiments"
	"youtopia/internal/obs"
	"youtopia/internal/workload"
)

func main() {
	figure := flag.String("figure", "both", "which figure to reproduce: 3, 4, both, latency (the §5.2 user-latency extension study), parallel (serial vs goroutine-parallel throughput), sharded (relation-partition sweep over the sharded store), multicore (GOMAXPROCS sweep with epoch-snapshot readers beside the writers), query (compiled slot runtime vs interpreted engine on seeded violation queries), inbox (busy-repoll vs decision-inbox park/answer/resume), or chaos (the durable workload under randomized transient fault schedules, exiting nonzero on any durability-invariant violation)")
	chaosRuns := flag.Int("chaos-seeds", 10, "fault-schedule seeds the -figure chaos battery runs (each is a full workload + recovery check)")
	chaosIntensity := flag.Int("chaos-intensity", 2, "fault bursts per operation class in each -figure chaos schedule")
	inboxWorkers := flag.Int("inbox-workers", 4, "worker count the -figure inbox study runs both modes on (0 = cooperative serial)")
	inboxLatency := flag.Int("inbox-latency", 200, "per-answer think time of the -figure inbox asynchronous answerer, in microseconds")
	workersFlag := flag.String("workers", "", "comma-separated worker counts for -figure parallel (0 = serial reference; default 0,1,2,4,8)")
	shardsFlag := flag.String("shards", "", "shard counts: a comma-separated sweep for -figure sharded (default 1,2,4), or a single relation-partition count every -figure parallel run uses")
	shardWorkers := flag.Int("shard-workers", 4, "worker count the -figure sharded sweep runs each shard point on")
	cpusFlag := flag.String("cpus", "", "comma-separated GOMAXPROCS caps for -figure multicore (default 1,2,4)")
	cpuWorkers := flag.Int("cpu-workers", 4, "worker count every -figure multicore point runs on")
	queryRows := flag.Int("query-rows", 1000, "rows per relation in the -figure query join world")
	queryOps := flag.Int("query-ops", 2000, "seeded violation queries per -figure query measurement")
	readers := flag.Int("readers", 4, "epoch-snapshot reader goroutines running beside the writers in -figure multicore")
	dataDir := flag.String("data-dir", "", "back each -figure parallel/sharded run with a write-ahead log under this directory (one per shard for sharded stores); empty = in-memory, the unchanged default")
	jsonPath := flag.String("json", "", "write the -figure parallel/sharded study as JSON to this file (the CI bench artifact)")
	baseline := flag.String("baseline", "", "compare the -figure parallel/sharded study against this committed JSON baseline and exit nonzero on regression")
	regressPct := flag.Float64("regress", 20, "tolerated throughput regression vs -baseline, in percent")
	preset := flag.String("preset", "moderate", "parameter preset: quick, moderate or paper")
	runs := flag.Int("runs", 3, "runs averaged per data point (paper: 100)")
	seed := flag.Int64("seed", 1, "master random seed")
	sweepFlag := flag.String("sweep", "", "comma-separated mapping counts (default per preset)")
	trackers := flag.String("trackers", "NAIVE,COARSE,PRECISE", "trackers to compare")
	naivePoints := flag.Int("naive-points", 2, "sweep points NAIVE runs (it degenerates; 0 = all)")
	csvPath := flag.String("csv", "", "also write all data points to this CSV file")
	relations := flag.Int("relations", 0, "override: number of relations")
	initial := flag.Int("initial", 0, "override: initial database seed tuples")
	updates := flag.Int("updates", 0, "override: workload length")
	quiet := flag.Bool("quiet", false, "suppress per-point progress output")
	metricsFlag := flag.Bool("metrics", false, "print a final snapshot of the process metrics registry after the study")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address during the study; /metrics is self-scraped once at the end as a smoke check")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the study to this file")
	traceOut := flag.String("trace-out", "", "record per-update lifecycle spans during the study and write the timelines to this JSON file")
	flag.Parse()

	// Observability riders around whichever study runs below. They are
	// torn down by defers because every -figure branch returns from
	// main directly; LIFO order prints the metrics table before the
	// debug server is scraped and shut down.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "youtopia-bench:", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProfile)
		}()
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, obs.Default)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr)
		defer func() {
			scrapeSelf(srv.Addr)
			srv.Close()
		}()
	}
	if *traceOut != "" {
		tr := obs.NewTracer()
		experiments.SetTrace(tr)
		defer func() {
			if err := tr.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "youtopia-bench: writing trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
		}()
	}
	if *metricsFlag {
		defer func() {
			fmt.Println()
			fmt.Println("== process metrics")
			fmt.Print(obs.RenderTable(obs.Default.Snapshot()))
		}()
	}

	base, sweep, err := configFor(*preset)
	if err != nil {
		fail(err)
	}
	base.Seed = *seed
	if *relations > 0 {
		base.Relations = *relations
	}
	if *initial > 0 {
		base.InitialTuples = *initial
	}
	if *updates > 0 {
		base.Updates = *updates
	}
	if *sweepFlag != "" {
		sweep, err = parseInts(*sweepFlag, 1)
		if err != nil {
			fail(fmt.Errorf("bad -sweep: %w", err))
		}
	}
	if *figure == "parallel" || *figure == "sharded" || *figure == "multicore" || *figure == "query" {
		var points []experiments.ParallelPoint
		var err error
		switch {
		case *figure == "query":
			points, err = experiments.QueryStudy(*queryRows, *queryOps, *runs)
		case *figure == "multicore":
			var cpus []int
			if *cpusFlag != "" {
				if cpus, err = parseInts(*cpusFlag, 1); err != nil {
					fail(fmt.Errorf("bad -cpus: %w", err))
				}
			}
			if *shardsFlag != "" {
				sc, err := parseInts(*shardsFlag, 1)
				if err != nil {
					fail(fmt.Errorf("bad -shards: %w", err))
				}
				if len(sc) != 1 {
					fail(fmt.Errorf("-figure multicore takes a single -shards value"))
				}
				base.Shards = sc[0]
			}
			points, err = experiments.MulticoreStudy(base, cpus, *cpuWorkers, *readers, *runs, *dataDir)
		case *figure == "parallel":
			var workers []int
			if *workersFlag != "" {
				if workers, err = parseInts(*workersFlag, 0); err != nil {
					fail(fmt.Errorf("bad -workers: %w", err))
				}
			}
			if *shardsFlag != "" {
				sc, err := parseInts(*shardsFlag, 1)
				if err != nil {
					fail(fmt.Errorf("bad -shards: %w", err))
				}
				if len(sc) != 1 {
					fail(fmt.Errorf("-figure parallel takes a single -shards value (use -figure sharded for a sweep)"))
				}
				base.Shards = sc[0]
			}
			points, err = experiments.ParallelStudy(base, workers, *runs, *dataDir)
		default:
			var shardCounts []int
			if *shardsFlag != "" {
				if shardCounts, err = parseInts(*shardsFlag, 1); err != nil {
					fail(fmt.Errorf("bad -shards: %w", err))
				}
			}
			points, err = experiments.ShardStudy(base, shardCounts, *shardWorkers, *runs, *dataDir)
		}
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderParallel(points))
		if *csvPath != "" {
			if err := os.WriteFile(*csvPath, []byte(experiments.ParallelCSV(points)), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		if *jsonPath != "" {
			data, err := experiments.ParallelJSON(points)
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *baseline != "" {
			base, err := experiments.LoadParallelJSON(*baseline)
			if err != nil {
				fail(err)
			}
			if err := experiments.CheckRegression(points, base, *regressPct); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "throughput within %.0f%% of %s\n", *regressPct, *baseline)
		}
		return
	}
	if *figure == "chaos" {
		points, err := runChaos(base, *chaosRuns, *seed, *chaosIntensity, *dataDir)
		if err != nil {
			fmt.Print(renderChaos(points))
			fail(err)
		}
		fmt.Print(renderChaos(points))
		return
	}
	if *figure == "inbox" {
		points, err := experiments.InboxStudy(base, *inboxWorkers, *runs,
			time.Duration(*inboxLatency)*time.Microsecond, *dataDir)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderInbox(points))
		if *csvPath != "" {
			if err := os.WriteFile(*csvPath, []byte(experiments.InboxCSV(points)), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		if *jsonPath != "" {
			data, err := experiments.InboxJSON(points)
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *baseline != "" {
			base, err := experiments.LoadInboxJSON(*baseline)
			if err != nil {
				fail(err)
			}
			if err := experiments.CheckInboxRegression(points, base, *regressPct); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "inbox throughput and poll counts within %.0f%% of %s\n", *regressPct, *baseline)
		}
		return
	}
	if *figure == "latency" {
		points, err := experiments.LatencyStudy(base, nil, *runs)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderLatency(points))
		return
	}
	opts := experiments.Options{
		Sweep:       sweep,
		Trackers:    strings.Split(*trackers, ","),
		Runs:        *runs,
		NaivePoints: *naivePoints,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	var figures []*experiments.Figure
	if *figure == "3" || *figure == "both" {
		fig, err := experiments.Figure3(base, opts)
		if err != nil {
			fail(err)
		}
		figures = append(figures, fig)
	}
	if *figure == "4" || *figure == "both" {
		fig, err := experiments.Figure4(base, opts)
		if err != nil {
			fail(err)
		}
		figures = append(figures, fig)
	}
	if len(figures) == 0 {
		fail(fmt.Errorf("unknown -figure %q (want 3, 4 or both)", *figure))
	}

	var csv strings.Builder
	for i, fig := range figures {
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(fig.Render())
		if *csvPath != "" {
			out := fig.CSV()
			if i > 0 {
				// Drop the duplicate header.
				if idx := strings.IndexByte(out, '\n'); idx >= 0 {
					out = out[idx+1:]
				}
			}
			csv.WriteString(out)
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

func configFor(preset string) (workload.Config, []int, error) {
	switch preset {
	case "quick":
		cfg := workload.Quick()
		return cfg, []int{8, 16, 24}, nil
	case "moderate":
		cfg := workload.Default()
		cfg.InitialTuples = 3000
		cfg.Updates = 150
		return cfg, experiments.DefaultSweep, nil
	case "paper":
		return workload.Default(), experiments.DefaultSweep, nil
	default:
		return workload.Config{}, nil, fmt.Errorf("unknown preset %q (want quick, moderate or paper)", preset)
	}
}

// parseInts parses a comma-separated integer list, rejecting entries
// below min.
func parseInts(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// scrapeSelf fetches the bench's own /metrics endpoint over real HTTP
// — the CI smoke check that the debug server serves a well-formed
// Prometheus exposition after a study.
func scrapeSelf(addr string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-bench: self-scrape:", err)
		os.Exit(1)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-bench: self-scrape:", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "# TYPE") {
		fmt.Fprintf(os.Stderr, "youtopia-bench: self-scrape: status %d, %d bytes, no # TYPE line\n", resp.StatusCode, len(body))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "self-scraped /metrics: %d bytes ok\n", len(body))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "youtopia-bench:", err)
	os.Exit(1)
}
