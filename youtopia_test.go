package youtopia_test

import (
	"errors"
	"testing"

	"youtopia"
)

const travelSource = `
relation C(city)
relation S(code, location, city_served)
relation A(location, name)
relation T(attraction, company, tour_start)
relation R(company, attraction, review)
relation V(city, convention)
relation E(convention, attraction)
mapping sigma1: C(c) -> exists a, l: S(a, l, c)
mapping sigma2: S(a, l, c) -> C(l), C(c)
mapping sigma3: A(l, n), T(n, co, st) -> exists r: R(co, n, r)
mapping sigma4: V(ci, x), T(n, co, ci) -> E(x, n)
tuple C("Ithaca")
tuple C("Syracuse")
tuple S("SYR", "Syracuse", "Syracuse")
tuple S("SYR", "Syracuse", "Ithaca")
tuple A("Geneva", "Geneva Winery")
tuple T("Geneva Winery", "XYZ", "Syracuse")
tuple R("XYZ", "Geneva Winery", "Great!")
tuple V("Syracuse", "Science Conf")
tuple E("Science Conf", "Geneva Winery")
`

func TestOpenAndApply(t *testing.T) {
	repo, ops, err := youtopia.Open(travelSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("ops = %v", ops)
	}
	if got := repo.Violations(); len(got) != 0 {
		t.Fatalf("initial violations: %v", got)
	}
	stats, err := repo.Apply(
		youtopia.Insert(youtopia.NewTuple("T",
			youtopia.Const("Geneva Winery"), youtopia.Const("QQQ"), youtopia.Const("Ithaca"))),
		youtopia.RandomUser(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Writes < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := repo.Violations(); len(got) != 0 {
		t.Fatalf("violations after apply: %v", got)
	}
}

func TestValueAndTupleHelpers(t *testing.T) {
	v := youtopia.Const("a")
	n := youtopia.NullValue(3)
	if !v.IsConst() || !n.IsNull() {
		t.Fatal("helpers wrong")
	}
	tu := youtopia.NewTuple("R", v, n)
	if tu.String() != "R(a, x3)" {
		t.Fatalf("tuple = %s", tu)
	}
	if youtopia.Insert(tu).Positive() != true {
		t.Fatal("insert must be positive")
	}
	if youtopia.Delete(tu).Positive() {
		t.Fatal("delete must be negative")
	}
	if !youtopia.ReplaceNull(n, v).Positive() {
		t.Fatal("null replacement must be positive")
	}
}

func TestNewWithProgrammaticSchema(t *testing.T) {
	schema := youtopia.NewSchema()
	schema.MustAddRelation("P", "name")
	set := &youtopia.MappingSet{}
	_ = set
	// Programmatic mapping construction goes through internal/tgd; the
	// facade covers the common path of parsing. Verify New validates.
	repo, _, err := youtopia.Open("relation P(name)\n")
	if err != nil {
		t.Fatal(err)
	}
	if repo.Schema().Len() != 1 {
		t.Fatal("schema missing")
	}
}

func TestProtectedCascadeSurface(t *testing.T) {
	repo, _, err := youtopia.Open(travelSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Protect("T"); err != nil {
		t.Fatal(err)
	}
	// Deleting the only review forces a cascade into A or T; with a
	// user who insists on T the update must be rejected.
	user := youtopia.UserFunc(func(u *youtopia.Update, g *youtopia.FrontierGroup,
		opts []youtopia.Decision, _ string) (youtopia.Decision, bool) {
		snap := repo.Store().Snap(u.Number)
		for _, d := range opts {
			if d.Kind != youtopia.DecideDelete || len(d.Subset) != 1 {
				continue
			}
			if tv, ok := snap.GetTuple(d.Subset[0]); ok && tv.Rel == "T" {
				return d, true
			}
		}
		return youtopia.Decision{}, false
	})
	_, err = repo.Apply(youtopia.Delete(youtopia.NewTuple("R",
		youtopia.Const("XYZ"), youtopia.Const("Geneva Winery"), youtopia.Const("Great!"))), user)
	if !errors.Is(err, youtopia.ErrProtectedCascade) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentSurface(t *testing.T) {
	repo, _, err := youtopia.Open(travelSource)
	if err != nil {
		t.Fatal(err)
	}
	ops := []youtopia.Op{
		youtopia.Insert(youtopia.NewTuple("C", youtopia.Const("Boston"))),
		youtopia.Insert(youtopia.NewTuple("V", youtopia.Const("Ithaca"), youtopia.Const("GoCon"))),
	}
	m, err := repo.RunConcurrent(ops, youtopia.SchedulerConfig{
		Tracker: youtopia.Precise,
		User:    youtopia.RandomUser(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != 2 || m.Runs < 2 {
		t.Fatalf("metrics = %+v", m)
	}
	for _, tr := range []youtopia.Tracker{youtopia.Naive, youtopia.Coarse, youtopia.Precise} {
		if tr.Name() == "" {
			t.Fatal("tracker name empty")
		}
	}
}
